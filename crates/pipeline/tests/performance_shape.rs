//! Performance-shape tests: not absolute numbers, but the *orderings*
//! the paper reports must hold on kernels designed to stress each
//! mechanism:
//!
//! * every secure scheme is no faster than the unsafe baseline;
//! * on dependent-load kernels, doppelganger loads recover slowdown for
//!   NDA-P, STT, and DoM;
//! * the predictor achieves high coverage/accuracy on strided kernels
//!   and near-zero coverage on pointer chases.

use dgl_core::SchemeKind;
use dgl_isa::{Program, ProgramBuilder, Reg, SparseMemory};
use dgl_pipeline::{Core, CoreConfig, RunReport};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// An indirect-streaming kernel: `v = b[a[i]]; if (v & 1) acc += v`,
/// where a[i] holds sequential indices, so the *dependent* load is
/// stride-predictable, and the branch on the loaded value keeps shadows
/// alive for the duration of each miss (the situation all three secure
/// schemes pay for). Working set far beyond the tiny L1 so misses
/// matter.
fn indirect_stream(n: i64) -> (Program, SparseMemory) {
    let mut b = ProgramBuilder::new("indirect_stream");
    b.imm(r(1), 0x100000) // a
        .imm(r(2), 0x400000) // b
        .imm(r(3), n)
        .imm(r(4), 0)
        .label("top")
        .load(r(5), r(1), 0) // idx = a[i]
        .shli(r(6), r(5), 3)
        .add(r(6), r(6), r(2))
        .load(r(7), r(6), 0) // dependent: b[idx]
        .andi(r(8), r(7), 1)
        .beq(r(8), Reg::ZERO, "skip") // data-dependent branch
        .add(r(4), r(4), r(7))
        .label("skip")
        .addi(r(1), r(1), 8)
        .subi(r(3), r(3), 1)
        .bne(r(3), Reg::ZERO, "top")
        .halt();
    let mut mem = SparseMemory::new();
    let mut x = 0x9e3779b97f4a7c15u64;
    for i in 0..n as u64 {
        mem.write_u64(0x100000 + 8 * i, i); // sequential indices
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        mem.write_u64(0x400000 + 8 * i, x >> 32);
    }
    (b.build().unwrap(), mem)
}

/// Pointer chase: addresses unpredictable by a stride predictor.
fn pointer_chase(n: u64) -> (Program, SparseMemory) {
    let mut b = ProgramBuilder::new("chase");
    b.imm(r(1), 0x200000)
        .imm(r(2), n as i64)
        .imm(r(3), 0)
        .label("top")
        .load(r(1), r(1), 0)
        .addi(r(3), r(3), 1)
        .subi(r(2), r(2), 1)
        .bne(r(2), Reg::ZERO, "top")
        .halt();
    let mut mem = SparseMemory::new();
    // A permutation cycle with large, irregular hops.
    let nodes = 512u64;
    let mut addr = 0x200000u64;
    for i in 1..=nodes {
        let next = 0x200000 + ((i * 2654435761) % nodes) * 0x140;
        mem.write_u64(addr, next);
        addr = next;
    }
    (b.build().unwrap(), mem)
}

fn run(scheme: SchemeKind, ap: bool, program: &Program, mem: &SparseMemory) -> RunReport {
    let core = Core::new(CoreConfig::tiny(), scheme, ap);
    let report = core
        .run(program, mem.clone(), 10_000_000)
        .unwrap_or_else(|e| panic!("{scheme} ap={ap}: {e}"));
    assert!(report.halted, "{scheme} ap={ap} hit cycle budget");
    report
}

#[test]
fn secure_schemes_never_beat_baseline() {
    let (p, mem) = indirect_stream(400);
    let base = run(SchemeKind::Baseline, false, &p, &mem).ipc();
    for scheme in SchemeKind::SECURE {
        let ipc = run(scheme, false, &p, &mem).ipc();
        assert!(
            ipc <= base * 1.02,
            "{scheme} ipc {ipc:.3} vs baseline {base:.3}"
        );
    }
}

#[test]
fn dependent_load_kernel_shows_scheme_overheads() {
    let (p, mem) = indirect_stream(400);
    let base = run(SchemeKind::Baseline, false, &p, &mem).ipc();
    let nda = run(SchemeKind::NdaP, false, &p, &mem).ipc();
    let stt = run(SchemeKind::Stt, false, &p, &mem).ipc();
    let dom = run(SchemeKind::DoM, false, &p, &mem).ipc();
    // All schemes must pay something on a dependent-load kernel.
    assert!(nda < base * 0.98, "nda {nda:.3} base {base:.3}");
    assert!(dom < base * 0.98, "dom {dom:.3} base {base:.3}");
    // STT never does worse than NDA-P (it strictly enables more ILP).
    assert!(stt >= nda * 0.95, "stt {stt:.3} should be >= nda {nda:.3}");
}

#[test]
fn address_prediction_recovers_slowdown_on_predictable_kernel() {
    let (p, mem) = indirect_stream(400);
    for scheme in SchemeKind::SECURE {
        let without = run(scheme, false, &p, &mem);
        let with = run(scheme, true, &p, &mem);
        assert!(
            with.ipc() > without.ipc() * 1.02,
            "{scheme}: ap {:.3} vs no-ap {:.3} (dgl issued {}, propagated {})",
            with.ipc(),
            without.ipc(),
            with.stats.dgl_issued,
            with.stats.dgl_propagated,
        );
    }
}

#[test]
fn address_prediction_barely_moves_the_baseline() {
    // Paper §7: unsafe baseline + AP gains only ~0.5% geomean.
    let (p, mem) = indirect_stream(400);
    let without = run(SchemeKind::Baseline, false, &p, &mem).ipc();
    let with = run(SchemeKind::Baseline, true, &p, &mem).ipc();
    let gain = with / without;
    assert!(
        (0.9..1.3).contains(&gain),
        "baseline AP gain should be modest, got {gain:.3}"
    );
}

#[test]
fn predictor_covers_strided_not_chased() {
    let (p, mem) = indirect_stream(400);
    let strided = run(SchemeKind::DoM, true, &p, &mem);
    assert!(
        strided.ap.coverage() > 0.5,
        "strided coverage {:.2}",
        strided.ap.coverage()
    );
    assert!(
        strided.ap.accuracy() > 0.9,
        "strided accuracy {:.2}",
        strided.ap.accuracy()
    );

    let (p, mem) = pointer_chase(400);
    let chased = run(SchemeKind::DoM, true, &p, &mem);
    assert!(
        chased.ap.accuracy() < 0.5 || chased.ap.coverage() < 0.3,
        "chase should defeat the stride predictor: cov {:.2} acc {:.2}",
        chased.ap.coverage(),
        chased.ap.accuracy()
    );
}

#[test]
fn dom_delays_speculative_misses() {
    let (p, mem) = indirect_stream(300);
    let dom = run(SchemeKind::DoM, false, &p, &mem);
    assert!(
        dom.stats.dom_delayed > 0,
        "DoM must observe blocked speculative misses"
    );
    let base = run(SchemeKind::Baseline, false, &p, &mem);
    assert_eq!(base.stats.dom_delayed, 0);
}

#[test]
fn doppelgangers_issue_and_propagate() {
    let (p, mem) = indirect_stream(300);
    for scheme in SchemeKind::SECURE {
        let rep = run(scheme, true, &p, &mem);
        assert!(
            rep.stats.dgl_issued > 0,
            "{scheme}: no doppelgangers issued"
        );
        assert!(
            rep.stats.dgl_propagated > 0,
            "{scheme}: no doppelganger value ever used"
        );
        let rep_off = run(scheme, false, &p, &mem);
        assert_eq!(rep_off.stats.dgl_issued, 0);
    }
}

#[test]
fn branch_predictor_learns_the_loop() {
    // A pure counted loop: the only branch is the backedge, which
    // gshare should predict near-perfectly once trained.
    let mut b = ProgramBuilder::new("counted");
    b.imm(r(1), 0)
        .imm(r(2), 2000)
        .label("top")
        .add(r(1), r(1), r(2))
        .subi(r(2), r(2), 1)
        .bne(r(2), Reg::ZERO, "top")
        .halt();
    let p = b.build().unwrap();
    let rep = run(SchemeKind::Baseline, false, &p, &SparseMemory::new());
    assert!(
        rep.stats.mispredict_rate() < 0.05,
        "loop branch should be near-perfectly predicted, rate {:.3}",
        rep.stats.mispredict_rate()
    );
}
