//! DoM+VP comparison mode: architectural correctness (predicted values
//! are always validated; mispredictions squash) and the qualitative
//! claim of the paper's §2.3 — value prediction recovers *less* than
//! address prediction because it must be validated in order and pays
//! squashes.

use dgl_core::SchemeKind;
use dgl_isa::{Emulator, Program, ProgramBuilder, Reg, SparseMemory};
use dgl_pipeline::{Core, CoreConfig};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

fn run_vp(program: &Program, mem: SparseMemory, scheme: SchemeKind) -> dgl_pipeline::RunReport {
    let mut core = Core::new(CoreConfig::tiny(), scheme, false);
    core.enable_value_prediction();
    core.run(program, mem, 4_000_000).expect("vp run")
}

/// An indirect kernel whose *values* are constant (value-predictable)
/// and whose addresses are also stride-predictable.
fn constant_values(n: i64) -> (Program, SparseMemory) {
    let mut b = ProgramBuilder::new("constvals");
    b.imm(r(1), 0x100000)
        .imm(r(2), n)
        .imm(r(3), 0)
        .label("top")
        .load(r(4), r(1), 0)
        .andi(r(5), r(4), 1)
        .bne(r(5), Reg::ZERO, "skip")
        .addi(r(3), r(3), 1)
        .label("skip")
        .add(r(3), r(3), r(4))
        .addi(r(1), r(1), 8)
        .subi(r(2), r(2), 1)
        .bne(r(2), Reg::ZERO, "top")
        .halt();
    let mut mem = SparseMemory::new();
    for i in 0..n as u64 {
        mem.write_u64(0x100000 + 8 * i, 7); // constant, odd
    }
    (b.build().unwrap(), mem)
}

/// Same structure with unpredictable values.
fn random_values(n: i64) -> (Program, SparseMemory) {
    let (p, _) = constant_values(n);
    let mut mem = SparseMemory::new();
    let mut x = 0x1234_5678_9abc_def0u64;
    for i in 0..n as u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        mem.write_u64(0x100000 + 8 * i, (x >> 16) | 1);
    }
    (p, mem)
}

#[test]
fn vp_matches_golden_model_on_predictable_values() {
    let (p, mem) = constant_values(300);
    let mut emu = Emulator::new(&p, mem.clone());
    let g = emu.run(10_000_000).unwrap();
    for scheme in [SchemeKind::Baseline, SchemeKind::DoM] {
        let rep = run_vp(&p, mem.clone(), scheme);
        assert!(rep.halted, "{scheme}");
        assert_eq!(rep.committed, g.instructions, "{scheme}");
        assert_eq!(rep.reg(r(3)), emu.reg(r(3)), "{scheme}");
        assert!(rep.stats.vp_predicted > 0, "{scheme}: vp never fired");
    }
}

#[test]
fn vp_matches_golden_model_on_unpredictable_values() {
    // Mispredictions must squash-and-repair, never corrupt.
    let (p, mem) = random_values(300);
    let mut emu = Emulator::new(&p, mem.clone());
    let g = emu.run(10_000_000).unwrap();
    for scheme in [SchemeKind::Baseline, SchemeKind::DoM] {
        let rep = run_vp(&p, mem.clone(), scheme);
        assert_eq!(rep.committed, g.instructions, "{scheme}");
        assert_eq!(rep.reg(r(3)), emu.reg(r(3)), "{scheme}");
    }
}

#[test]
fn vp_mispredictions_cost_squashes() {
    let (p, mem) = random_values(300);
    let rep = run_vp(&p, mem.clone(), SchemeKind::DoM);
    if rep.stats.vp_predicted > 0 {
        assert!(
            rep.stats.vp_squashes > 0,
            "random values predicted {} times without a single squash",
            rep.stats.vp_predicted
        );
    }
    let (p, mem) = constant_values(300);
    let rep = run_vp(&p, mem, SchemeKind::DoM);
    assert_eq!(
        rep.stats.vp_squashes, 0,
        "constant values must never squash"
    );
}

#[test]
fn vp_stats_account_coverage_and_accuracy() {
    let (p, mem) = constant_values(300);
    let rep = run_vp(&p, mem, SchemeKind::DoM);
    assert!(rep.vp.coverage() > 0.5, "coverage {:.2}", rep.vp.coverage());
    assert!(
        rep.vp.accuracy() > 0.95,
        "accuracy {:.2}",
        rep.vp.accuracy()
    );
}

#[test]
#[should_panic(expected = "alternatives")]
fn vp_plus_ap_is_rejected() {
    let mut core = Core::new(CoreConfig::tiny(), SchemeKind::DoM, true);
    core.enable_value_prediction();
}

#[test]
#[should_panic(expected = "DoM")]
fn vp_under_stt_is_rejected() {
    let mut core = Core::new(CoreConfig::tiny(), SchemeKind::Stt, false);
    core.enable_value_prediction();
}
