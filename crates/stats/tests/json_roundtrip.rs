//! Property tests for the `Json` writer/parser pair, plus strict-parser
//! rejection cases. `dgl compare` consumes externally supplied manifest
//! and trajectory files, so the parser must both accept everything the
//! writer emits (exactly, including `u64` counters above 2^53) and
//! reject the common near-JSON that other tools leak (trailing commas,
//! bare NaN/Infinity, duplicate keys).

use dgl_stats::Json;
use proptest::collection;
use proptest::prelude::*;

/// Arbitrary JSON documents up to three levels of nesting. Object keys
/// are deduplicated at generation time because the strict parser
/// rejects duplicate keys (tested separately below).
fn json_strategy() -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<u64>().prop_map(Json::uint),
        // Finite floats only: m / 2^e is exact in binary, and the
        // writer renders non-finite values as null (lossy by design).
        (any::<i64>(), 0u32..40).prop_map(|(m, e)| Json::num(m as f64 / (1u64 << e) as f64)),
        "\\PC{0,12}".prop_map(Json::str),
    ];
    leaf.prop_recursive(3, 24, 5, |inner| {
        prop_oneof![
            collection::vec(inner.clone(), 0..5).prop_map(Json::Arr),
            collection::vec(("\\PC{0,8}", inner.clone()), 0..5).prop_map(|fields| {
                let mut obj: Vec<(String, Json)> = Vec::new();
                for (k, v) in fields {
                    if !obj.iter().any(|(seen, _)| *seen == k) {
                        obj.push((k, v));
                    }
                }
                Json::Obj(obj)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn compact_output_round_trips(doc in json_strategy()) {
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("writer output must parse");
        prop_assert_eq!(parsed, doc);
    }

    #[test]
    fn pretty_output_round_trips(doc in json_strategy()) {
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).expect("pretty writer output must parse");
        prop_assert_eq!(parsed, doc);
    }
}

#[test]
fn rejects_near_json() {
    for (doc, why) in [
        ("[1,]", "trailing comma in array"),
        ("{\"a\": 1,}", "trailing comma in object"),
        ("NaN", "bare NaN"),
        ("Infinity", "bare Infinity"),
        ("-Infinity", "bare -Infinity"),
        ("[1, NaN]", "NaN inside an array"),
        ("{\"a\": 1, \"a\": 2}", "duplicate object key"),
        ("", "empty input"),
        ("[1] 2", "trailing garbage"),
    ] {
        assert!(Json::parse(doc).is_err(), "parser accepted {why}: {doc:?}");
    }
}

#[test]
fn duplicate_key_error_names_the_key() {
    let err = Json::parse("{\"ipc\": 1.0, \"ipc\": 2.0}").unwrap_err();
    assert!(err.contains("duplicate key"), "unexpected error: {err}");
    assert!(err.contains("ipc"), "error should name the key: {err}");
}
