//! Property: the Prometheus text exposition and the JSON encoding are
//! two views of one registry snapshot, so every counter value must
//! agree between them — for arbitrary metric names (sanitized on the
//! Prometheus side) and arbitrary u64 values, in the presence of
//! gauges and histograms sharing the registry.

use dgl_stats::{prom, Histogram, Json, MetricsRegistry};
use proptest::collection;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn every_counter_agrees_between_encodings(
        // Raw metric names as the codebase produces them: dotted
        // series with digits and dashes (`serve.worker.0.kips`,
        // `ckptstore.disk-hits`…), plus hostile leading digits.
        counters in collection::vec(("[a-z0-9][a-z0-9._-]{0,24}", any::<u64>()), 0..12),
        gauges in collection::vec(("[a-z][a-z0-9_.]{0,12}", any::<i32>()), 0..4),
        samples in collection::vec(any::<u64>(), 0..16),
    ) {
        let mut reg = MetricsRegistry::new();
        // Two distinct raw names may sanitize to the same Prometheus
        // series; keep only the first of each collision class so every
        // exposition line maps back to exactly one registry entry.
        let mut seen = std::collections::BTreeSet::new();
        let mut kept = 0usize;
        for (name, v) in &counters {
            // The `c.` prefix keeps the counter namespace disjoint
            // from the gauges and the histogram below.
            let name = format!("c.{name}");
            if seen.insert(prom::sanitize_name(&name)) {
                reg.counter(&name, *v);
                kept += 1;
            }
        }
        for (name, v) in &gauges {
            reg.gauge(&format!("g.{name}"), *v as f64 / 16.0);
        }
        let mut hist = Histogram::new();
        for s in &samples {
            hist.record(*s);
        }
        reg.histogram("h.latency", hist);

        let text = prom::to_prometheus(&reg);
        let json = reg.to_json();

        // Every counter the text exposition reports exists in the JSON
        // encoding (modulo name sanitization) with the same value…
        let exported = prom::parse_counters(&text);
        for (prom_name, prom_value) in &exported {
            let json_value = json
                .entries()
                .unwrap()
                .iter()
                .find(|(k, _)| &prom::sanitize_name(k) == prom_name)
                .and_then(|(_, v)| v.as_u64());
            prop_assert_eq!(
                json_value,
                Some(*prom_value),
                "counter {} disagrees between encodings",
                prom_name
            );
        }
        // …and every distinct sanitized counter name made it out
        // (collisions collapse to one series, last writer wins,
        // matching how the registry itself stores them).
        prop_assert_eq!(exported.len(), kept);
        // The JSON side parses strictly (it rides the serve protocol).
        prop_assert!(Json::parse(&json.to_string()).is_ok());
    }
}
