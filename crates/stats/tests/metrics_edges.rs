//! Edge cases of the metrics plumbing the telemetry plane leans on:
//! `MetricsRegistry::{snapshot, delta, merge}` under counter resets,
//! wraparound-adjacent values, gauge overwrite ordering, and histogram
//! merges with mismatched bucket layouts; `Histogram::quantile` on
//! empty and single-sample inputs.

use dgl_stats::{Histogram, Metric, MetricsRegistry};

#[test]
fn delta_saturates_on_counter_reset() {
    // A restarted producer republishes a smaller counter; the delta
    // must clamp to zero, not wrap to ~2^64.
    let mut before = MetricsRegistry::new();
    before.counter("jobs", 100);
    let mut after = MetricsRegistry::new();
    after.counter("jobs", 3);
    let d = after.delta(&before);
    assert_eq!(d.counter_value("jobs"), Some(0));
    // The normal direction still subtracts.
    let d = before.delta(&after);
    assert_eq!(d.counter_value("jobs"), Some(97));
}

#[test]
fn delta_at_the_u64_boundary() {
    let mut before = MetricsRegistry::new();
    before.counter("ticks", u64::MAX - 1);
    let mut after = MetricsRegistry::new();
    after.counter("ticks", u64::MAX);
    assert_eq!(after.delta(&before).counter_value("ticks"), Some(1));
    // Metrics absent from the earlier snapshot pass through whole.
    after.counter("fresh", 7);
    assert_eq!(after.delta(&before).counter_value("fresh"), Some(7));
}

#[test]
fn delta_of_mismatched_kinds_passes_the_new_value_through() {
    // A name that changed kind between snapshots cannot be subtracted;
    // the current value wins whole.
    let mut before = MetricsRegistry::new();
    before.gauge("x", 5.0);
    let mut after = MetricsRegistry::new();
    after.counter("x", 9);
    assert_eq!(after.delta(&before).counter_value("x"), Some(9));
}

#[test]
fn gauge_overwrite_order_is_last_writer_wins() {
    let mut reg = MetricsRegistry::new();
    reg.gauge("depth", 4.0);
    reg.gauge("depth", 1.0);
    assert!(matches!(reg.get("depth"), Some(Metric::Gauge(v)) if *v == 1.0));
    // Merge takes the incoming side's gauge, regardless of magnitude.
    let mut other = MetricsRegistry::new();
    other.gauge("depth", 0.25);
    reg.merge(&other);
    assert!(matches!(reg.get("depth"), Some(Metric::Gauge(v)) if *v == 0.25));
    // …and merging the empty registry changes nothing.
    reg.merge(&MetricsRegistry::new());
    assert!(matches!(reg.get("depth"), Some(Metric::Gauge(v)) if *v == 0.25));
}

#[test]
fn merge_adds_counters_and_histograms_with_mismatched_layouts() {
    // `a` has seen only small values (short bucket vector), `b` only
    // large ones (long bucket vector); merging either way must agree.
    let mut small = Histogram::new();
    small.record(1);
    small.record(3);
    let mut large = Histogram::new();
    large.record(100_000);

    let mut a = MetricsRegistry::new();
    a.counter("n", 2);
    a.histogram("lat", small.clone());
    let mut b = MetricsRegistry::new();
    b.counter("n", 40);
    b.histogram("lat", large.clone());

    let mut ab = a.snapshot();
    ab.merge(&b);
    let mut ba = b.snapshot();
    ba.merge(&a);
    assert_eq!(ab.counter_value("n"), Some(42));
    assert_eq!(
        ab.to_json().to_string_pretty(),
        ba.to_json().to_string_pretty(),
        "merge must commute on counters and histograms"
    );
    let Some(Metric::Histogram(h)) = ab.get("lat") else {
        panic!("merged histogram survives");
    };
    assert_eq!(h.count(), 3);
    assert_eq!(h.max(), 100_000);
    assert_eq!(h.sum(), 100_004);
}

#[test]
fn histogram_delta_with_shrunken_layout_clamps() {
    // The "earlier" snapshot has more buckets than the current value
    // (a reset shrank the histogram): bucket-wise subtraction must
    // saturate, never underflow or panic on the layout mismatch.
    let mut earlier = Histogram::new();
    earlier.record(2);
    earlier.record(1 << 30);
    let mut now = Histogram::new();
    now.record(2);
    let d = now.saturating_sub(&earlier);
    assert_eq!(d.count(), 0);
    assert_eq!(d.sum(), 0);
    // And the opposite mismatch counts the new tail bucket.
    let d = earlier.saturating_sub(&now);
    assert_eq!(d.count(), 1);
    assert_eq!(d.quantile(1.0), Some(1 << 30));
}

#[test]
fn quantile_on_empty_and_single_sample_inputs() {
    let empty = Histogram::new();
    assert_eq!(empty.quantile(0.0), None);
    assert_eq!(empty.quantile(0.5), None);
    assert_eq!(empty.quantile(1.0), None);

    let mut one = Histogram::new();
    one.record(37);
    // Every quantile of a single sample is that sample (clamped to the
    // observed max, never interpolated past it).
    for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
        assert_eq!(one.quantile(q), Some(37), "q={q}");
    }
    let mut zero = Histogram::new();
    zero.record(0);
    assert_eq!(zero.quantile(0.5), Some(0));
    // Out-of-range requests clamp instead of panicking.
    assert_eq!(one.quantile(-3.0), Some(37));
    assert_eq!(one.quantile(42.0), Some(37));
}
