//! Aggregations used by the paper's figures: geometric means, normalized
//! series, and descriptive summaries.

/// Geometric mean of a slice of positive values.
///
/// This is the aggregation the paper uses across benchmarks ("GMEAN" in
/// Figure 6). Returns `0.0` for an empty slice; non-positive elements are
/// skipped (they would make the mean undefined).
///
/// # Examples
///
/// ```
/// let g = dgl_stats::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    let mut sum_ln = 0.0;
    let mut n = 0usize;
    for &v in values {
        if v > 0.0 {
            sum_ln += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (sum_ln / n as f64).exp()
    }
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Harmonic mean of positive values; `0.0` if none are positive.
///
/// Appropriate when averaging rates such as IPC over equal instruction
/// counts.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    let mut sum_inv = 0.0;
    let mut n = 0usize;
    for &v in values {
        if v > 0.0 {
            sum_inv += 1.0 / v;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        n as f64 / sum_inv
    }
}

/// Normalizes `values[i]` to `baseline[i]`, element-wise.
///
/// This is how the paper presents every performance figure: scheme IPC
/// divided by unsafe-baseline IPC. Entries with a non-positive baseline
/// normalize to `0.0`.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn normalize(values: &[f64], baseline: &[f64]) -> Vec<f64> {
    assert_eq!(
        values.len(),
        baseline.len(),
        "normalize requires equal-length series"
    );
    values
        .iter()
        .zip(baseline)
        .map(|(&v, &b)| if b > 0.0 { v / b } else { 0.0 })
        .collect()
}

/// Percentage change from `from` to `to` (e.g. `percent_change(0.887, 0.935)
/// ≈ 5.4`). Returns `0.0` when `from` is zero.
pub fn percent_change(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        0.0
    } else {
        (to - from) / from * 100.0
    }
}

/// Descriptive summary of a data series.
///
/// # Examples
///
/// ```
/// use dgl_stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0]);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 3.0);
/// assert!((s.mean - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum sample (0.0 when empty).
    pub min: f64,
    /// Maximum sample (0.0 when empty).
    pub max: f64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Geometric mean over positive samples (0.0 when none).
    pub geomean: f64,
}

impl Summary {
    /// Computes a summary of the given values.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                geomean: 0.0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Self {
            count: values.len(),
            min,
            max,
            mean: mean(values),
            geomean: geomean(values),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_and_nonpositive() {
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[0.0, -1.0]), 0.0);
        // Non-positive elements are skipped, not poisoned.
        assert!((geomean(&[0.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_harmonic() {
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[2.0, 6.0]) - 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn normalize_basic() {
        let n = normalize(&[0.9, 2.0], &[1.0, 4.0]);
        assert!((n[0] - 0.9).abs() < 1e-12);
        assert!((n[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_baseline() {
        let n = normalize(&[1.0], &[0.0]);
        assert_eq!(n[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn normalize_length_mismatch_panics() {
        let _ = normalize(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn percent_change_matches_paper_usage() {
        // NDA-P: 88.7% -> 93.5% of baseline is a 42% cut in slowdown
        // (computed on the slowdown, not the performance).
        let slow_before = 100.0 - 88.7;
        let slow_after = 100.0 - 93.5;
        let cut = -percent_change(slow_before, slow_after);
        assert!(cut > 42.0 && cut < 43.0, "cut={cut}");
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
    }

    #[test]
    fn summary_of_values() {
        let s = Summary::of(&[2.0, 8.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 8.0);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.geomean - 4.0).abs() < 1e-12);
    }
}
