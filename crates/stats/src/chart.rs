//! ASCII bar charts used to render the paper's figures in a terminal,
//! plus compact sparklines for cycle-domain time series.

use std::fmt;

/// Block characters from empty to full, used by [`sparkline`].
const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a time series as a one-line sparkline, scaled to `max`
/// (values above `max` clamp to the full block; a non-positive `max`
/// is treated as the series' own maximum).
///
/// Long series are downsampled to at most `width` points by averaging
/// equal-width spans, so a 100 000-sample occupancy series still reads
/// as one terminal line.
///
/// # Examples
///
/// ```
/// use dgl_stats::chart::sparkline;
///
/// let s = sparkline(&[0.0, 1.0, 2.0, 3.0], 3.0, 80);
/// assert_eq!(s.chars().count(), 4);
/// assert!(s.starts_with('▁') && s.ends_with('█'));
/// ```
pub fn sparkline(values: &[f64], max: f64, width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let max = if max > 0.0 {
        max
    } else {
        values.iter().copied().fold(0.0f64, f64::max).max(1e-12)
    };
    let points: Vec<f64> = if values.len() <= width {
        values.to_vec()
    } else {
        // Average each of `width` equal spans.
        (0..width)
            .map(|i| {
                let lo = i * values.len() / width;
                let hi = (((i + 1) * values.len()) / width).max(lo + 1);
                values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    };
    points
        .iter()
        .map(|&v| {
            let frac = (v / max).clamp(0.0, 1.0);
            let idx = (frac * (SPARK_LEVELS.len() - 1) as f64).round() as usize;
            SPARK_LEVELS[idx]
        })
        .collect()
}

/// A horizontal ASCII bar chart.
///
/// The figure-reproduction binaries (`fig6`, `fig7`, ...) use this to
/// render the paper's bar charts as text.
///
/// # Examples
///
/// ```
/// use dgl_stats::BarChart;
///
/// let mut c = BarChart::new("normalized IPC", 1.0);
/// c.bar("mcf_like", 0.52);
/// let s = c.to_string();
/// assert!(s.contains("mcf_like"));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    max_value: f64,
    width: usize,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates a chart. `max_value` is the value that fills the full bar
    /// width; values above it are clamped visually (the numeric label is
    /// always exact).
    pub fn new(title: &str, max_value: f64) -> Self {
        Self {
            title: title.to_owned(),
            max_value: if max_value > 0.0 { max_value } else { 1.0 },
            width: 50,
            bars: Vec::new(),
        }
    }

    /// Sets the bar width in characters (default 50).
    pub fn width(&mut self, width: usize) -> &mut Self {
        self.width = width.max(1);
        self
    }

    /// Appends a labelled bar.
    pub fn bar(&mut self, label: &str, value: f64) -> &mut Self {
        self.bars.push((label.to_owned(), value));
        self
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// Whether the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let label_w = self
            .bars
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        for (label, value) in &self.bars {
            let frac = (value / self.max_value).clamp(0.0, 1.0);
            let filled = (frac * self.width as f64).round() as usize;
            writeln!(
                f,
                "{label:<label_w$} |{}{} {value:.3}",
                "#".repeat(filled),
                " ".repeat(self.width - filled),
            )?;
        }
        Ok(())
    }
}

/// Fill characters assigned to stacked-bar segments in legend order;
/// charts with more segments than fills cycle through the palette.
const STACK_FILLS: [char; 10] = ['#', '=', '+', '-', 'o', 'x', '*', '%', '@', '~'];

/// A horizontal stacked ASCII bar chart: every bar is split into the
/// same ordered set of segments, each rendered with its own fill
/// character and named once in a legend line.
///
/// `dgl explain --cpi` uses this to draw per-configuration CPI stacks
/// side by side.
///
/// # Examples
///
/// ```
/// use dgl_stats::StackedBarChart;
///
/// let mut c = StackedBarChart::new("cycles", &["commit", "mem"]);
/// c.bar("base", &[60.0, 40.0]);
/// let s = c.to_string();
/// assert!(s.contains("# commit"));
/// assert!(s.contains("base"));
/// ```
#[derive(Debug, Clone)]
pub struct StackedBarChart {
    title: String,
    width: usize,
    segments: Vec<String>,
    bars: Vec<(String, Vec<f64>)>,
}

impl StackedBarChart {
    /// Creates a chart whose bars all share the ordered `segments`.
    pub fn new(title: &str, segments: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            width: 60,
            segments: segments.iter().map(|s| (*s).to_owned()).collect(),
            bars: Vec::new(),
        }
    }

    /// Sets the bar width in characters (default 60).
    pub fn width(&mut self, width: usize) -> &mut Self {
        self.width = width.max(1);
        self
    }

    /// Appends a labelled bar; `values` must carry one entry per
    /// segment, in the order given to [`StackedBarChart::new`].
    pub fn bar(&mut self, label: &str, values: &[f64]) -> &mut Self {
        assert_eq!(
            values.len(),
            self.segments.len(),
            "bar `{label}` must have one value per segment"
        );
        self.bars.push((label.to_owned(), values.to_vec()));
        self
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// Whether the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }

    fn fill(i: usize) -> char {
        STACK_FILLS[i % STACK_FILLS.len()]
    }
}

impl fmt::Display for StackedBarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let legend: Vec<String> = self
            .segments
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{} {s}", Self::fill(i)))
            .collect();
        writeln!(f, "  [{}]", legend.join("  "))?;
        // Bars share one scale so segment widths are comparable
        // across rows.
        let max_total = self
            .bars
            .iter()
            .map(|(_, vs)| vs.iter().map(|v| v.max(0.0)).sum::<f64>())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let label_w = self
            .bars
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        for (label, values) in &self.bars {
            let total: f64 = values.iter().map(|v| v.max(0.0)).sum();
            let mut row = String::new();
            // Cumulative rounding: each segment gets the difference of
            // rounded prefix sums, so widths sum to the bar's own
            // rounded length and rounding error never accumulates.
            let mut cum = 0.0;
            let mut drawn = 0usize;
            for (i, v) in values.iter().enumerate() {
                cum += v.max(0.0);
                let upto = (cum / max_total * self.width as f64).round() as usize;
                for _ in drawn..upto {
                    row.push(Self::fill(i));
                }
                drawn = drawn.max(upto);
            }
            row.extend(std::iter::repeat_n(' ', self.width - drawn.min(self.width)));
            writeln!(f, "{label:<label_w$} |{row} {total:.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_and_bars() {
        let mut c = BarChart::new("t", 1.0);
        c.bar("a", 0.5).bar("b", 1.0);
        let s = c.to_string();
        assert!(s.starts_with("t\n"));
        assert_eq!(s.lines().count(), 3);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn clamps_overlong_bars() {
        let mut c = BarChart::new("t", 1.0);
        c.width(10);
        c.bar("x", 5.0);
        let line = c.to_string().lines().nth(1).unwrap().to_owned();
        assert!(line.contains(&"#".repeat(10)));
        assert!(line.contains("5.000"));
    }

    #[test]
    fn zero_max_does_not_divide_by_zero() {
        let mut c = BarChart::new("t", 0.0);
        c.bar("x", 0.3);
        let _ = c.to_string();
    }

    #[test]
    fn stacked_bars_share_one_scale_and_sum_widths() {
        let mut c = StackedBarChart::new("cpi", &["commit", "mem", "scheme"]);
        c.width(40);
        c.bar("base", &[20.0, 20.0, 0.0]);
        c.bar("dom", &[20.0, 20.0, 40.0]);
        let s = c.to_string();
        assert!(s.starts_with("cpi\n"));
        assert!(s.contains("# commit"), "{s}");
        assert!(s.contains("= mem"), "{s}");
        let base = s.lines().nth(2).unwrap();
        let dom = s.lines().nth(3).unwrap();
        // The larger bar fills the full width; the smaller is half.
        assert_eq!(dom.matches('+').count(), 20, "{dom}");
        assert_eq!(base.chars().filter(|c| "#=+".contains(*c)).count(), 20);
        assert!(base.contains("40.000") && dom.contains("80.000"));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn stacked_bar_tiny_segments_never_overflow_width() {
        let mut c = StackedBarChart::new("t", &["a", "b"]);
        c.width(10);
        c.bar("x", &[0.0001, 0.0001]);
        c.bar("y", &[1.0, 0.0]);
        for line in c.to_string().lines().skip(2) {
            let bar: String = line.chars().skip_while(|&ch| ch != '|').collect();
            assert!(bar.len() <= 1 + 10 + 8, "{line}");
        }
    }

    #[test]
    #[should_panic(expected = "one value per segment")]
    fn stacked_bar_rejects_mismatched_values() {
        let mut c = StackedBarChart::new("t", &["a", "b"]);
        c.bar("x", &[1.0]);
    }

    #[test]
    fn sparkline_scales_and_clamps() {
        let s = sparkline(&[0.0, 5.0, 10.0, 20.0], 10.0, 80);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 4);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
        assert_eq!(chars[3], '█', "over-max clamps to full");
    }

    #[test]
    fn sparkline_downsamples_long_series() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = sparkline(&values, 1000.0, 40);
        assert_eq!(s.chars().count(), 40);
        let chars: Vec<char> = s.chars().collect();
        assert!(chars.first() < chars.last(), "monotone series keeps shape");
    }

    #[test]
    fn sparkline_edge_cases() {
        assert_eq!(sparkline(&[], 1.0, 40), "");
        assert_eq!(sparkline(&[1.0], 1.0, 0), "");
        // max <= 0 falls back to the series' own max.
        let s = sparkline(&[0.0, 2.0], 0.0, 10);
        assert!(s.ends_with('█'));
        // All-zero series with zero max must not divide by zero.
        let z = sparkline(&[0.0, 0.0], 0.0, 10);
        assert_eq!(z.chars().count(), 2);
    }
}
