//! ASCII bar charts used to render the paper's figures in a terminal.

use std::fmt;

/// A horizontal ASCII bar chart.
///
/// The figure-reproduction binaries (`fig6`, `fig7`, ...) use this to
/// render the paper's bar charts as text.
///
/// # Examples
///
/// ```
/// use dgl_stats::BarChart;
///
/// let mut c = BarChart::new("normalized IPC", 1.0);
/// c.bar("mcf_like", 0.52);
/// let s = c.to_string();
/// assert!(s.contains("mcf_like"));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    max_value: f64,
    width: usize,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates a chart. `max_value` is the value that fills the full bar
    /// width; values above it are clamped visually (the numeric label is
    /// always exact).
    pub fn new(title: &str, max_value: f64) -> Self {
        Self {
            title: title.to_owned(),
            max_value: if max_value > 0.0 { max_value } else { 1.0 },
            width: 50,
            bars: Vec::new(),
        }
    }

    /// Sets the bar width in characters (default 50).
    pub fn width(&mut self, width: usize) -> &mut Self {
        self.width = width.max(1);
        self
    }

    /// Appends a labelled bar.
    pub fn bar(&mut self, label: &str, value: f64) -> &mut Self {
        self.bars.push((label.to_owned(), value));
        self
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// Whether the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let label_w = self
            .bars
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        for (label, value) in &self.bars {
            let frac = (value / self.max_value).clamp(0.0, 1.0);
            let filled = (frac * self.width as f64).round() as usize;
            writeln!(
                f,
                "{label:<label_w$} |{}{} {value:.3}",
                "#".repeat(filled),
                " ".repeat(self.width - filled),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_and_bars() {
        let mut c = BarChart::new("t", 1.0);
        c.bar("a", 0.5).bar("b", 1.0);
        let s = c.to_string();
        assert!(s.starts_with("t\n"));
        assert_eq!(s.lines().count(), 3);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn clamps_overlong_bars() {
        let mut c = BarChart::new("t", 1.0);
        c.width(10);
        c.bar("x", 5.0);
        let line = c.to_string().lines().nth(1).unwrap().to_owned();
        assert!(line.contains(&"#".repeat(10)));
        assert!(line.contains("5.000"));
    }

    #[test]
    fn zero_max_does_not_divide_by_zero() {
        let mut c = BarChart::new("t", 0.0);
        c.bar("x", 0.3);
        let _ = c.to_string();
    }
}
