//! ASCII table rendering for experiment reports.

use std::fmt;

/// Column alignment within a [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (default; used for names).
    #[default]
    Left,
    /// Right-aligned (used for numbers).
    Right,
}

/// A simple ASCII table builder.
///
/// The benchmark binaries use this to print paper-style rows
/// (`fig6`, `fig7`, ...).
///
/// # Examples
///
/// ```
/// use dgl_stats::{Align, Table};
///
/// let mut t = Table::new(vec!["bench".into(), "ipc".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["mcf_like".into(), "0.52".into()]);
/// let s = t.to_string();
/// assert!(s.contains("mcf_like"));
/// assert!(s.contains("0.52"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        let aligns = vec![Align::Left; headers.len()];
        Self {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Appends a row. Shorter rows are padded with empty cells; longer
    /// rows are truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of a name followed by formatted floats.
    pub fn row_f64(&mut self, name: &str, values: &[f64], precision: usize) -> &mut Self {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(name.to_owned());
        for v in values {
            cells.push(format!("{v:.precision$}"));
        }
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (i, cell) in cells.iter().enumerate() {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                let w = widths[i];
                match self.aligns[i] {
                    Align::Left => write!(f, "{cell:<w$}")?,
                    Align::Right => write!(f, "{cell:>w$}")?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_and_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x".into(), "1".into()]);
        let s = t.to_string();
        assert!(s.starts_with("a  b\n"));
        assert!(s.contains("x  1"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["only".into()]);
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    fn right_alignment() {
        let mut t = Table::new(vec!["name".into(), "val".into()]);
        t.align(1, Align::Right);
        t.row(vec!["x".into(), "7".into()]);
        let s = t.to_string();
        // "name" pads to 4, two-space separator, "7" right-aligned to 3.
        assert!(s.contains("x       7"), "table was: {s}");
    }

    #[test]
    fn row_f64_formats() {
        let mut t = Table::new(vec!["n".into(), "v".into()]);
        t.row_f64("w", &[0.8876], 3);
        assert!(t.to_string().contains("0.888"));
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["h".into()]);
        assert!(t.is_empty());
        t.row(vec!["r".into()]);
        assert_eq!(t.len(), 1);
    }
}
