//! A named-metric registry: the aggregation point between simulator
//! components and machine-readable output.
//!
//! Components *publish* their counters into a [`MetricsRegistry`]
//! under stable dotted names (`core.cycles`, `cache.l1.misses`, ...);
//! consumers snapshot, diff, merge, and export the registry without
//! knowing which structs produced which numbers. The existing stat
//! structs (`CoreStats`, `ApStats`, `CacheStats`) keep their fields —
//! publication is a one-way copy taken after a run, so the registry
//! can never perturb simulated state.
//!
//! # Examples
//!
//! ```
//! use dgl_stats::{Metric, MetricsRegistry};
//!
//! let mut reg = MetricsRegistry::new();
//! reg.counter("core.cycles", 100);
//! reg.gauge("core.ipc", 2.5);
//! let snap = reg.snapshot();
//! reg.counter("core.cycles", 150); // republish a later value
//! let delta = reg.delta(&snap);
//! assert_eq!(delta.get("core.cycles"), Some(&Metric::Counter(50)));
//! ```

use crate::histogram::Histogram;
use crate::json::Json;
use std::collections::BTreeMap;

/// One published metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically published event count.
    Counter(u64),
    /// An instantaneous or derived value (IPC, coverage, ...).
    Gauge(f64),
    /// A full distribution.
    Histogram(Histogram),
}

/// A registry of named metrics, ordered by name.
///
/// Names are dotted paths (`component.sub.metric`); the name ordering
/// of [`BTreeMap`] makes every export deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a counter (replacing any previous value under the
    /// name — publication copies a finished total, it does not
    /// accumulate).
    pub fn counter(&mut self, name: &str, value: u64) {
        self.metrics.insert(name.to_owned(), Metric::Counter(value));
    }

    /// Publishes a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_owned(), Metric::Gauge(value));
    }

    /// Publishes a histogram.
    pub fn histogram(&mut self, name: &str, value: Histogram) {
        self.metrics
            .insert(name.to_owned(), Metric::Histogram(value));
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// The value of a counter (`None` for absent names or other kinds).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Number of published metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates `(name, metric)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.clone()
    }

    /// The change since `earlier`: counters subtract (saturating),
    /// gauges report the numeric difference, histograms subtract
    /// bucket-wise. Metrics absent from `earlier` pass through whole.
    pub fn delta(&self, earlier: &MetricsRegistry) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for (name, metric) in &self.metrics {
            let diffed = match (metric, earlier.metrics.get(name)) {
                (Metric::Counter(now), Some(Metric::Counter(then))) => {
                    Metric::Counter(now.saturating_sub(*then))
                }
                (Metric::Gauge(now), Some(Metric::Gauge(then))) => Metric::Gauge(now - then),
                (Metric::Histogram(now), Some(Metric::Histogram(then))) => {
                    Metric::Histogram(now.saturating_sub(then))
                }
                (m, _) => m.clone(),
            };
            out.metrics.insert(name.clone(), diffed);
        }
        out
    }

    /// Merges another registry into this one: counters add, histograms
    /// merge, gauges take the other side's value (a merged gauge has no
    /// meaningful sum; recompute derived gauges after merging).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in &other.metrics {
            match (self.metrics.get_mut(name), metric) {
                (Some(Metric::Counter(mine)), Metric::Counter(theirs)) => {
                    *mine = mine.saturating_add(*theirs);
                }
                (Some(Metric::Histogram(mine)), Metric::Histogram(theirs)) => {
                    mine.merge(theirs);
                }
                (slot, m) => {
                    let m = m.clone();
                    match slot {
                        Some(existing) => *existing = m,
                        None => {
                            self.metrics.insert(name.clone(), m);
                        }
                    }
                }
            }
        }
    }

    /// Exports the registry as a JSON object: counters as integers,
    /// gauges as floats, histograms as `{count, mean, max, p50, p95,
    /// p99, buckets: [[lower_bound, count], ...]}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        for (name, metric) in &self.metrics {
            let value = match metric {
                Metric::Counter(v) => Json::uint(*v),
                Metric::Gauge(v) => Json::num(*v),
                Metric::Histogram(h) => {
                    let mut buckets = Json::array();
                    for (lo, c) in h.iter() {
                        buckets =
                            buckets.push(Json::array().push(Json::uint(lo)).push(Json::uint(c)));
                    }
                    Json::object()
                        .field("count", Json::uint(h.count()))
                        .field("mean", Json::num(h.mean()))
                        .field("max", Json::uint(h.max()))
                        .field("p50", Json::uint(h.quantile(0.50).unwrap_or(0)))
                        .field("p95", Json::uint(h.quantile(0.95).unwrap_or(0)))
                        .field("p99", Json::uint(h.quantile(0.99).unwrap_or(0)))
                        .field("buckets", buckets)
                }
            };
            obj = obj.field(name, value);
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter("core.cycles", 1000);
        reg.counter("core.committed", 2500);
        reg.gauge("core.ipc", 2.5);
        let mut h = Histogram::new();
        h.record(4);
        h.record(80);
        reg.histogram("core.load_latency", h);
        reg
    }

    #[test]
    fn publish_and_lookup() {
        let reg = sample();
        assert_eq!(reg.counter_value("core.cycles"), Some(1000));
        assert_eq!(
            reg.counter_value("core.ipc"),
            None,
            "gauge is not a counter"
        );
        assert_eq!(reg.len(), 4);
        assert!(!reg.is_empty());
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "iteration is name-ordered");
    }

    #[test]
    fn republish_replaces() {
        let mut reg = sample();
        reg.counter("core.cycles", 1100);
        assert_eq!(reg.counter_value("core.cycles"), Some(1100));
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let snap = sample();
        let mut later = sample();
        later.counter("core.cycles", 1500);
        later.gauge("core.ipc", 2.0);
        let mut h = Histogram::new();
        h.record(4);
        h.record(80);
        h.record(80);
        later.histogram("core.load_latency", h);
        later.counter("new.counter", 7);
        let d = later.delta(&snap);
        assert_eq!(d.counter_value("core.cycles"), Some(500));
        assert_eq!(d.counter_value("core.committed"), Some(0));
        assert_eq!(
            d.counter_value("new.counter"),
            Some(7),
            "new metrics pass through"
        );
        match d.get("core.ipc") {
            Some(Metric::Gauge(g)) => assert!((g + 0.5).abs() < 1e-12),
            other => panic!("gauge delta: {other:?}"),
        }
        match d.get("core.load_latency") {
            Some(Metric::Histogram(h)) => assert_eq!(h.count(), 1),
            other => panic!("histogram delta: {other:?}"),
        }
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter_value("core.cycles"), Some(2000));
        match a.get("core.load_latency") {
            Some(Metric::Histogram(h)) => assert_eq!(h.count(), 4),
            other => panic!("merged histogram: {other:?}"),
        }
        // Gauges take the incoming value.
        assert_eq!(a.get("core.ipc"), Some(&Metric::Gauge(2.5)));
    }

    #[test]
    fn json_export_round_trips() {
        let reg = sample();
        let doc = reg.to_json();
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).expect("export parses");
        assert_eq!(back, doc);
        assert_eq!(back.get("core.cycles").and_then(Json::as_u64), Some(1000));
        let h = back.get("core.load_latency").expect("histogram");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(2));
        assert!(h.get("p95").and_then(Json::as_u64).unwrap() >= 64);
    }
}
