//! Prometheus text exposition for a [`MetricsRegistry`].
//!
//! `dgl serve --metrics-listen` speaks two encodings: the registry's
//! own JSON (`MetricsRegistry::to_json`) and this text format, which
//! any Prometheus-compatible scraper ingests directly. Both encodings
//! are views of the same snapshot, so every counter value agrees
//! between them (property-tested in `tests/prom_json_agree.rs`).
//!
//! Mapping:
//!
//! * dotted names are sanitized (`ckptstore.hits` → `ckptstore_hits`);
//!   counters and gauges keep their value verbatim,
//! * a [`Histogram`](crate::Histogram)'s log2 buckets become cumulative
//!   `le` buckets: bucket *k* covers integers `[2^k, 2^(k+1))`, so its
//!   inclusive upper bound is `2^(k+1) - 1` (bucket 0 → `le="1"`),
//!   followed by `le="+Inf"`, `_sum` and `_count` series.
//!
//! Counter names are exposed as-is (no `_total` suffix is appended):
//! the JSON encoding is the registry's primary wire format and the two
//! must stay key-compatible for cross-checking.

use crate::json::Json;
use crate::registry::{Metric, MetricsRegistry};
use std::fmt::Write as _;

/// Sanitizes a dotted metric name into the Prometheus grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every other character becomes `_`, and
/// a leading digit gets an underscore prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4): one `# TYPE` line per metric followed by its
/// sample lines, in the registry's deterministic name order.
///
/// # Examples
///
/// ```
/// use dgl_stats::{prom, MetricsRegistry};
///
/// let mut reg = MetricsRegistry::new();
/// reg.counter("serve.jobs", 3);
/// let text = prom::to_prometheus(&reg);
/// assert!(text.contains("# TYPE serve_jobs counter\nserve_jobs 3\n"));
/// ```
pub fn to_prometheus(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, metric) in reg.iter() {
        let name = sanitize_name(name);
        match metric {
            Metric::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            Metric::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = write!(out, "{name} ");
                write_f64(&mut out, *v);
                out.push('\n');
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (lo, c) in h.iter() {
                    cumulative += c;
                    // Bucket k spans integers [2^k, 2^(k+1)); `lo` is 0
                    // for bucket 0, else 2^k, so the inclusive upper
                    // bound is max(2*lo, 2) - 1.
                    let le = lo.max(1).saturating_mul(2) - 1;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                let _ = writeln!(out, "{name}_sum {}", h.sum());
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

/// Extracts `(sanitized_name, value)` for every counter sample in a
/// text exposition previously produced by [`to_prometheus`]. Used by
/// the cross-encoding agreement tests; not a general Prometheus
/// parser.
pub fn parse_counters(text: &str) -> Vec<(String, u64)> {
    let mut types: Vec<(&str, &str)> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, kind)) = rest.split_once(' ') {
                types.push((name, kind));
            }
        }
    }
    let mut out = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.split_once(' ') else {
            continue;
        };
        let is_counter = types
            .iter()
            .any(|(n, kind)| *n == name && *kind == "counter");
        if !is_counter {
            continue;
        }
        if let Ok(v) = value.parse::<u64>() {
            out.push((name.to_owned(), v));
        }
    }
    out
}

/// The registry's JSON encoding of the same snapshot — a convenience
/// so a metrics endpoint serving both formats only needs this module.
pub fn to_json(reg: &MetricsRegistry) -> Json {
    reg.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("ckptstore.hits"), "ckptstore_hits");
        assert_eq!(sanitize_name("serve.worker-0.kips"), "serve_worker_0_kips");
        assert_eq!(sanitize_name("0day"), "_0day");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("already_ok:sub"), "already_ok:sub");
    }

    #[test]
    fn counters_and_gauges_render_plainly() {
        let mut reg = MetricsRegistry::new();
        reg.counter("serve.jobs", 42);
        reg.gauge("serve.queue_depth", 3.0);
        reg.gauge("bad.ratio", f64::NAN);
        let text = to_prometheus(&reg);
        assert!(text.contains("# TYPE serve_jobs counter\nserve_jobs 42\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 3\n"));
        assert!(text.contains("bad_ratio NaN\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf_sum_count() {
        let mut h = Histogram::new();
        h.record(1); // bucket 0: [0, 2) -> le="1"
        h.record(5); // bucket 2: [4, 8) -> le="7"
        h.record(5);
        let mut reg = MetricsRegistry::new();
        reg.histogram("q", h);
        let text = to_prometheus(&reg);
        let expected = "# TYPE q histogram\n\
                        q_bucket{le=\"1\"} 1\n\
                        q_bucket{le=\"7\"} 3\n\
                        q_bucket{le=\"+Inf\"} 3\n\
                        q_sum 11\n\
                        q_count 3\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn parse_counters_recovers_only_counters() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a.b", 7);
        reg.gauge("c", 7.0);
        let mut h = Histogram::new();
        h.record(7);
        reg.histogram("d", h);
        let text = to_prometheus(&reg);
        assert_eq!(parse_counters(&text), vec![("a_b".to_owned(), 7)]);
    }
}
