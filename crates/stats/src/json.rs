//! A minimal JSON value type with a writer and a parser.
//!
//! The build environment vendors no external crates, so the
//! machine-readable exports (run manifests, metric snapshots) are
//! built on this module instead of serde. It covers exactly what the
//! simulator needs:
//!
//! * [`Json`] — an owned JSON document (objects preserve insertion
//!   order, so exports are byte-stable),
//! * [`Json::to_string_pretty`] / `Display` — deterministic rendering,
//! * [`Json::parse`] — a strict recursive-descent parser, used by the
//!   round-trip tests and by CI to validate emitted manifests.
//!
//! # Examples
//!
//! ```
//! use dgl_stats::Json;
//!
//! let doc = Json::object()
//!     .field("schema", Json::str("demo"))
//!     .field("cycles", Json::uint(1234));
//! let text = doc.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(doc, back);
//! assert_eq!(back.get("cycles").and_then(Json::as_u64), Some(1234));
//! ```

use std::fmt;

/// An owned JSON value.
///
/// Unsigned integers get their own variant so `u64` counters survive a
/// round trip exactly (no `f64` mantissa clipping below 2^53 — and an
/// explicit variant keeps the intent visible).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (simulator counters).
    UInt(u64),
    /// A finite float. Non-finite values render as `null` (JSON has no
    /// NaN/Inf), so never feed unguarded divisions in here.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (rendering is byte-stable).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object (builder entry point).
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Json {
        Json::Arr(Vec::new())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn uint(v: u64) -> Json {
        Json::UInt(v)
    }

    /// A float value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// Appends a field to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value)),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Appends an element to an array (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an array.
    pub fn push(mut self, value: Json) -> Json {
        match &mut self {
            Json::Arr(items) => items.push(value),
            _ => panic!("Json::push on a non-array"),
        }
        self
    }

    /// Looks up a field of an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (also accepts an integral [`Json::Num`]).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields in insertion order.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline —
    /// the format the run manifests are written in.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        use fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // parses back to the same f64 and always includes a
                    // decimal point or exponent, keeping the float/int
                    // distinction through a round trip.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_escaped(out, k);
                    out.push_str(if indent.is_some() { ": " } else { ":" });
                    v.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict: one value, nothing but
    /// whitespace after it).
    ///
    /// # Errors
    ///
    /// A human-readable description with a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes (UTF-8 passes through).
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_owned())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates are not produced by our writer;
                            // map them to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_owned()),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                // Duplicate keys are legal JSON but always a bug in the
                // deterministic exports this parser consumes: the
                // writer emits each field once, and silently keeping
                // either copy would make `compare` lie about one of
                // them.
                return Err(format!("duplicate key `{key}` at byte {key_at}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders_compact() {
        let doc = Json::object()
            .field("a", Json::uint(1))
            .field("b", Json::array().push(Json::num(0.5)).push(Json::Null));
        assert_eq!(doc.to_string(), r#"{"a":1,"b":[0.5,null]}"#);
    }

    #[test]
    fn pretty_rendering_is_indented_and_stable() {
        let doc = Json::object().field("x", Json::object().field("y", Json::Bool(true)));
        let text = doc.to_string_pretty();
        assert_eq!(text, "{\n  \"x\": {\n    \"y\": true\n  }\n}\n");
    }

    #[test]
    fn round_trips_every_variant() {
        let doc = Json::object()
            .field("null", Json::Null)
            .field("bool", Json::Bool(false))
            .field("uint", Json::uint(u64::MAX))
            .field("float", Json::num(2.5e-3))
            .field("neg", Json::num(-7.0))
            .field("str", Json::str("a \"quote\" and a \\ and\nnewline"))
            .field("arr", Json::array().push(Json::uint(1)).push(Json::uint(2)))
            .field("empty_arr", Json::array())
            .field("empty_obj", Json::object());
        for text in [doc.to_string(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "input: {text}");
        }
    }

    #[test]
    fn u64_counters_survive_exactly() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        // A float stays a float even when integral.
        let v = Json::parse("1.0").unwrap();
        assert_eq!(v, Json::Num(1.0));
        assert_eq!(v.as_u64(), Some(1));
    }

    #[test]
    fn nonfinite_floats_render_as_null() {
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn getters_navigate() {
        let doc = Json::parse(r#"{"a": {"b": [1, "x"]}}"#).unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr.as_array().unwrap()[1].as_str(), Some("x"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.entries().unwrap().len(), 1);
    }

    #[test]
    fn escaped_unicode_parses() {
        let v = Json::parse(r#""é\t""#).unwrap();
        assert_eq!(v.as_str(), Some("é\t"));
    }
}
