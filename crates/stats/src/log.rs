//! Structured JSON-lines logging: the host-side observability channel.
//!
//! Every line is one self-describing JSON object (`dgl-log` v1) with a
//! severity level, a process-monotonic sequence number, microseconds
//! since the first log call, a `target` naming the subsystem, a human
//! message, and arbitrary key=value fields — so a `dgl serve` process
//! under load can be tailed with `jq` instead of scraped with regexes.
//!
//! The sink is a process-global, swappable [`LogSink`]; the default
//! writes to stderr (where the bare `eprintln!` lines used to go), and
//! tests install a [`CaptureSink`] to assert on records without
//! touching file descriptors. Logging is host-side only by
//! construction: nothing in the simulator's cycle loop calls it, so it
//! can never perturb simulated results.
//!
//! # Examples
//!
//! ```
//! use dgl_stats::log::{self, CaptureSink, Level};
//! use dgl_stats::Json;
//!
//! let capture = CaptureSink::new();
//! log::set_sink(Box::new(capture.clone()));
//! log::info("serve", "job accepted", &[("id", Json::str("j1"))]);
//! let records = capture.take();
//! assert_eq!(records[0].target, "serve");
//! assert_eq!(records[0].fields[0].0, "id");
//! # log::set_sink(Box::new(log::StderrSink));
//! ```

use crate::json::Json;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Schema identifier carried on every log line.
pub const LOG_SCHEMA: &str = "dgl-log";
/// Log line schema version.
pub const LOG_VERSION: u64 = 1;

/// Severity of a log record, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic detail (off by default).
    Debug,
    /// Normal operational events.
    Info,
    /// Something degraded but the process continues.
    Warn,
    /// An operation failed.
    Error,
}

impl Level {
    /// Lower-case name as serialized (`"debug"`, `"info"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            _ => Level::Error,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured log record, as handed to the sink.
#[derive(Debug, Clone)]
pub struct LogRecord {
    /// Process-monotonic sequence number (gap-free across threads).
    pub seq: u64,
    /// Microseconds since the process's first log call.
    pub t_us: u64,
    /// Severity.
    pub level: Level,
    /// Subsystem name (`serve`, `fuzz`, `metrics`, ...).
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Structured key=value fields, in call order.
    pub fields: Vec<(String, Json)>,
}

impl LogRecord {
    /// The record as one `dgl-log` v1 JSON object. Fields are flattened
    /// to top level; a field whose name collides with an envelope key
    /// is skipped (envelope wins).
    pub fn to_json(&self) -> Json {
        const RESERVED: [&str; 7] = ["schema", "version", "seq", "t_us", "level", "target", "msg"];
        let mut doc = Json::object()
            .field("schema", Json::str(LOG_SCHEMA))
            .field("version", Json::uint(LOG_VERSION))
            .field("seq", Json::uint(self.seq))
            .field("t_us", Json::uint(self.t_us))
            .field("level", Json::str(self.level.name()))
            .field("target", Json::str(self.target.clone()))
            .field("msg", Json::str(self.message.clone()));
        for (name, value) in &self.fields {
            if !RESERVED.contains(&name.as_str()) {
                doc = doc.field(name, value.clone());
            }
        }
        doc
    }
}

/// Receiver for log records. Implementations must not log themselves
/// (the global sink lock is held during `write`).
pub trait LogSink: Send {
    /// Deliver one record.
    fn write(&mut self, record: &LogRecord);
}

/// The default sink: one compact JSON line per record on stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl LogSink for StderrSink {
    fn write(&mut self, record: &LogRecord) {
        eprintln!("{}", record.to_json());
    }
}

/// Test sink that retains every record behind a clonable handle.
#[derive(Debug, Clone, Default)]
pub struct CaptureSink {
    records: Arc<Mutex<Vec<LogRecord>>>,
}

impl CaptureSink {
    /// New empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns everything captured so far.
    pub fn take(&self) -> Vec<LogRecord> {
        std::mem::take(&mut self.records.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of records currently captured.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl LogSink for CaptureSink {
    fn write(&mut self, record: &LogRecord) {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record.clone());
    }
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static MIN_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

fn sink() -> &'static Mutex<Box<dyn LogSink>> {
    static SINK: OnceLock<Mutex<Box<dyn LogSink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Box::new(StderrSink)))
}

/// Replaces the global sink (tests, alternate transports). Records
/// logged by other threads during the swap land in whichever sink
/// holds the lock first.
pub fn set_sink(new_sink: Box<dyn LogSink>) {
    *sink().lock().unwrap_or_else(|e| e.into_inner()) = new_sink;
}

/// Sets the minimum severity that reaches the sink (default
/// [`Level::Info`]).
pub fn set_min_level(level: Level) {
    MIN_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current minimum severity.
pub fn min_level() -> Level {
    Level::from_u8(MIN_LEVEL.load(Ordering::Relaxed))
}

/// Emits one record. Sequence numbers are claimed even for records
/// below the minimum level, so `seq` gaps reveal suppressed volume.
pub fn log(level: Level, target: &str, message: &str, fields: &[(&str, Json)]) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    if level < min_level() {
        return;
    }
    let record = LogRecord {
        seq,
        t_us: origin().elapsed().as_micros() as u64,
        level,
        target: target.to_owned(),
        message: message.to_owned(),
        fields: fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    };
    sink()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .write(&record);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, message: &str, fields: &[(&str, Json)]) {
    log(Level::Debug, target, message, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, message: &str, fields: &[(&str, Json)]) {
    log(Level::Info, target, message, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, message: &str, fields: &[(&str, Json)]) {
    log(Level::Warn, target, message, fields);
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, message: &str, fields: &[(&str, Json)]) {
    log(Level::Error, target, message, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global; every assertion about routing lives
    // in this one test so parallel test threads cannot interleave.
    #[test]
    fn capture_records_levels_fields_and_monotonic_seq() {
        let capture = CaptureSink::new();
        set_sink(Box::new(capture.clone()));
        set_min_level(Level::Debug);
        info("t", "first", &[("k", Json::uint(1))]);
        warn("t", "second", &[]);
        debug("other", "third", &[("x", Json::str("y"))]);
        set_min_level(Level::Warn);
        info("t", "suppressed", &[]);
        error("t", "fourth", &[]);
        let records = capture.take();
        set_min_level(Level::Info);
        set_sink(Box::new(StderrSink));

        assert_eq!(records.len(), 4, "info below Warn is suppressed");
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
        // The suppressed record still claimed a sequence number.
        assert_eq!(records[3].seq - records[2].seq, 2);
        assert_eq!(records[0].level, Level::Info);
        assert_eq!(records[0].fields, vec![("k".to_owned(), Json::uint(1))]);
        assert_eq!(records[3].message, "fourth");

        let doc = records[2].to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(LOG_SCHEMA));
        assert_eq!(doc.get("level").and_then(Json::as_str), Some("debug"));
        assert_eq!(doc.get("target").and_then(Json::as_str), Some("other"));
        assert_eq!(doc.get("x").and_then(Json::as_str), Some("y"));
        // Round-trips through the strict parser.
        let line = doc.to_string();
        assert_eq!(&Json::parse(&line).expect("log line parses"), &doc);
    }

    #[test]
    fn reserved_field_names_cannot_clobber_the_envelope() {
        let rec = LogRecord {
            seq: 9,
            t_us: 1,
            level: Level::Info,
            target: "t".into(),
            message: "m".into(),
            fields: vec![
                ("seq".to_owned(), Json::uint(999)),
                ("ok".to_owned(), Json::Bool(true)),
            ],
        };
        let doc = rec.to_json();
        assert_eq!(doc.get("seq").and_then(Json::as_u64), Some(9));
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        // Strict parser would reject a duplicate `seq` key; prove the
        // rendered line stays parseable.
        Json::parse(&doc.to_string()).expect("no duplicate keys");
    }

    #[test]
    fn level_ordering_and_names() {
        assert!(Level::Debug < Level::Info && Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::Warn.to_string(), "warn");
        assert_eq!(Level::from_u8(Level::Error as u8), Level::Error);
    }
}
