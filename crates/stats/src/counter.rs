//! Event counters for simulator statistics.

use std::collections::BTreeMap;
use std::fmt;

/// A saturating event counter.
///
/// Counters are the basic unit of simulator bookkeeping: every
/// microarchitectural event of interest (cache access, squash, prediction)
/// increments one. Saturating arithmetic means a runaway simulation can
/// never panic inside statistics code.
///
/// # Examples
///
/// ```
/// use dgl_stats::Counter;
///
/// let mut c = Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.value(), 42);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self(0)
    }

    /// Increments the counter by one.
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the current count.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// Returns this counter as a fraction of `denom`, or 0.0 when
    /// `denom` is zero.
    pub fn ratio_of(&self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 / denom as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Counter {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// A named collection of counters, useful for ad-hoc instrumentation.
///
/// Unlike a struct of [`Counter`] fields, a `CounterSet` can grow at run
/// time, which the experiment drivers use for per-workload breakdowns.
///
/// # Examples
///
/// ```
/// use dgl_stats::CounterSet;
///
/// let mut set = CounterSet::new();
/// set.inc("squashes");
/// set.add("cycles", 100);
/// assert_eq!(set.get("squashes"), 1);
/// assert_eq!(set.get("missing"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counters: BTreeMap<String, Counter>,
}

impl CounterSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the named counter, creating it at zero if absent.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        self.counters.entry(name.to_owned()).or_default().add(n);
    }

    /// Returns the value of the named counter (zero if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::value)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.value()))
    }

    /// Number of distinct counters recorded.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no counter has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Merges another set into this one by summing counters.
    pub fn merge(&mut self, other: &CounterSet) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.iter() {
            writeln!(f, "{name}: {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basic() {
        let mut c = Counter::new();
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::from(u64::MAX - 1);
        c.add(100);
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn counter_ratio() {
        let mut c = Counter::new();
        c.add(3);
        assert!((c.ratio_of(4) - 0.75).abs() < 1e-12);
        assert_eq!(c.ratio_of(0), 0.0);
    }

    #[test]
    fn counter_set_accumulates() {
        let mut s = CounterSet::new();
        s.inc("a");
        s.inc("a");
        s.add("b", 5);
        assert_eq!(s.get("a"), 2);
        assert_eq!(s.get("b"), 5);
        assert_eq!(s.get("c"), 0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn counter_set_merge() {
        let mut a = CounterSet::new();
        a.add("x", 1);
        let mut b = CounterSet::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn counter_set_display_nonempty() {
        let mut s = CounterSet::new();
        s.inc("events");
        assert!(format!("{s}").contains("events: 1"));
    }
}
