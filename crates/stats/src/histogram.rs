//! Power-of-two bucketed histograms for latency distributions.

use std::fmt;

/// A histogram with log2 buckets: bucket *k* counts samples in
/// `[2^k, 2^(k+1))` (bucket 0 counts 0 and 1).
///
/// The simulator records load-completion latencies here; the
/// distribution is how DoM's delayed misses or NDA's locked results
/// show up most vividly.
///
/// # Examples
///
/// ```
/// use dgl_stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record(70);
/// assert_eq!(h.count(), 2);
/// assert!(h.mean() > 35.0 && h.mean() < 38.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.max(1).leading_zeros() as usize).saturating_sub(1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples at or above `threshold`'s bucket (a cheap tail count).
    pub fn tail_at_least(&self, threshold: u64) -> u64 {
        let b = Self::bucket_of(threshold);
        self.buckets.iter().skip(b).sum()
    }

    /// Iterates `(bucket_lower_bound, count)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (if k == 0 { 0 } else { 1u64 << k }, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "(empty histogram)");
        }
        writeln!(
            f,
            "n={} mean={:.1} max={}",
            self.count,
            self.mean(),
            self.max
        )?;
        let peak = self.buckets.iter().copied().max().unwrap_or(0);
        if peak == 0 {
            // No bucket holds a sample (defensive: a histogram whose
            // counters disagree must not divide by zero below and render
            // NaN-width bars).
            return Ok(());
        }
        for (lo, c) in self.iter() {
            let bar = "#".repeat(((c as f64 / peak as f64) * 40.0).round() as usize);
            writeln!(f, "{lo:>8}+ |{bar} {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [1, 2, 4, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 8);
        assert!((h.mean() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn tail_counts() {
        let mut h = Histogram::new();
        for v in [1, 5, 70, 80, 300] {
            h.record(v);
        }
        assert_eq!(h.tail_at_least(64), 3);
        assert_eq!(h.tail_at_least(256), 1);
        assert_eq!(h.tail_at_least(1), 5);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn display_nonempty() {
        let mut h = Histogram::new();
        h.record(5);
        let s = h.to_string();
        assert!(s.contains("n=1"));
        assert!(Histogram::new().to_string().contains("empty"));
    }

    #[test]
    fn display_never_renders_nan_bars() {
        // Empty histograms (and merges of empty histograms) must not
        // divide by a zero peak when rendering bars.
        let empty = Histogram::new();
        assert_eq!(empty.to_string(), "(empty histogram)");
        let mut merged = Histogram::new();
        merged.merge(&Histogram::new());
        let s = merged.to_string();
        assert!(!s.contains("NaN"), "rendered: {s}");
        let mut h = Histogram::new();
        h.record(7);
        assert!(!h.to_string().contains("NaN"));
    }

    #[test]
    fn iter_lists_bucket_bounds() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(100);
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(0, 1), (64, 1)]);
    }
}
