//! Power-of-two bucketed histograms for latency distributions.

use std::fmt;

/// A histogram with log2 buckets: bucket *k* counts samples in
/// `[2^k, 2^(k+1))` (bucket 0 counts 0 and 1).
///
/// The simulator records load-completion latencies here; the
/// distribution is how DoM's delayed misses or NDA's locked results
/// show up most vividly.
///
/// # Examples
///
/// ```
/// use dgl_stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record(70);
/// assert_eq!(h.count(), 2);
/// assert!(h.mean() > 35.0 && h.mean() < 38.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.max(1).leading_zeros() as usize).saturating_sub(1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded samples (saturating), as accumulated by
    /// [`record`](Self::record) — the `_sum` series of a Prometheus
    /// histogram exposition.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Samples at or above `threshold`'s bucket (a cheap tail count).
    pub fn tail_at_least(&self, threshold: u64) -> u64 {
        let b = Self::bucket_of(threshold);
        self.buckets.iter().skip(b).sum()
    }

    /// Iterates `(bucket_lower_bound, count)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (if k == 0 { 0 } else { 1u64 << k }, c))
    }

    /// An approximate quantile: the smallest value `v` such that at
    /// least `q` of the samples are ≤ `v`, interpolated linearly
    /// inside the log2 bucket that crosses the rank. `None` when the
    /// histogram is empty; `q` is clamped to `[0, 1]`.
    ///
    /// Bucketing bounds the error to one bucket width (< 2× the true
    /// value), which is the right fidelity for latency reporting:
    /// p95 = 512 vs 600 cycles is the same story, p95 = 512 vs 8 is
    /// not.
    ///
    /// # Examples
    ///
    /// ```
    /// use dgl_stats::Histogram;
    ///
    /// let mut h = Histogram::new();
    /// for _ in 0..99 { h.record(4); }
    /// h.record(1000);
    /// assert!(h.quantile(0.5).unwrap() < 8);
    /// assert!(h.quantile(0.999).unwrap() >= 512);
    /// assert_eq!(Histogram::new().quantile(0.5), None);
    /// ```
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample the quantile lands on.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if k == 0 { 0u64 } else { 1u64 << k };
                let width = if k == 0 { 2 } else { 1u64 << k };
                // Position of the rank inside this bucket, in (0, 1].
                let frac = (rank - seen) as f64 / c as f64;
                let interpolated = lo as f64 + frac * (width.saturating_sub(1)) as f64;
                // Never report beyond the observed maximum (the top
                // bucket is mostly empty space above `max`).
                return Some((interpolated.round() as u64).min(self.max));
            }
            seen += c;
        }
        Some(self.max)
    }

    /// Bucket-wise saturating difference `self - earlier`: the samples
    /// recorded since `earlier` was snapshotted. `max` keeps this
    /// histogram's value (a maximum cannot be un-observed).
    pub fn saturating_sub(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram {
            buckets: vec![0; self.buckets.len()],
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        };
        for (k, &c) in self.buckets.iter().enumerate() {
            let then = earlier.buckets.get(k).copied().unwrap_or(0);
            out.buckets[k] = c.saturating_sub(then);
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "(empty histogram)");
        }
        writeln!(
            f,
            "n={} mean={:.1} max={}",
            self.count,
            self.mean(),
            self.max
        )?;
        let peak = self.buckets.iter().copied().max().unwrap_or(0);
        if peak == 0 {
            // No bucket holds a sample (defensive: a histogram whose
            // counters disagree must not divide by zero below and render
            // NaN-width bars).
            return Ok(());
        }
        for (lo, c) in self.iter() {
            let bar = "#".repeat(((c as f64 / peak as f64) * 40.0).round() as usize);
            writeln!(f, "{lo:>8}+ |{bar} {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [1, 2, 4, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 8);
        assert!((h.mean() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn tail_counts() {
        let mut h = Histogram::new();
        for v in [1, 5, 70, 80, 300] {
            h.record(v);
        }
        assert_eq!(h.tail_at_least(64), 3);
        assert_eq!(h.tail_at_least(256), 1);
        assert_eq!(h.tail_at_least(1), 5);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn display_nonempty() {
        let mut h = Histogram::new();
        h.record(5);
        let s = h.to_string();
        assert!(s.contains("n=1"));
        assert!(Histogram::new().to_string().contains("empty"));
    }

    #[test]
    fn display_never_renders_nan_bars() {
        // Empty histograms (and merges of empty histograms) must not
        // divide by a zero peak when rendering bars.
        let empty = Histogram::new();
        assert_eq!(empty.to_string(), "(empty histogram)");
        let mut merged = Histogram::new();
        merged.merge(&Histogram::new());
        let s = merged.to_string();
        assert!(!s.contains("NaN"), "rendered: {s}");
        let mut h = Histogram::new();
        h.record(7);
        assert!(!h.to_string().contains("NaN"));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(Histogram::new().quantile(0.5), None);
        assert_eq!(Histogram::new().quantile(0.0), None);
        assert_eq!(Histogram::new().quantile(1.0), None);
    }

    #[test]
    fn quantile_single_bucket() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(5); // all in bucket [4, 8)
        }
        for q in [0.0, 0.5, 0.95, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((4..8).contains(&v), "q={q} -> {v}");
        }
        // Interpolation never exceeds the observed max.
        assert!(h.quantile(1.0).unwrap() <= h.max());
    }

    #[test]
    fn quantile_splits_bimodal_distribution() {
        let mut h = Histogram::new();
        for _ in 0..95 {
            h.record(3);
        }
        for _ in 0..5 {
            h.record(700);
        }
        assert!(h.quantile(0.5).unwrap() < 8, "median in the fast mode");
        assert!(h.quantile(0.99).unwrap() >= 512, "tail in the slow mode");
        assert_eq!(h.quantile(1.0).unwrap(), 700, "p100 is the max");
    }

    #[test]
    fn quantile_of_merged_matches_combined_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in [1, 2, 3, 4] {
            a.record(v);
            combined.record(v);
        }
        for v in [100, 200, 300, 400] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        for q in [0.25, 0.5, 0.75, 0.95] {
            assert_eq!(a.quantile(q), combined.quantile(q), "q={q}");
        }
    }

    #[test]
    fn quantile_clamps_q() {
        let mut h = Histogram::new();
        h.record(10);
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(42.0), h.quantile(1.0));
    }

    #[test]
    fn saturating_sub_isolates_new_samples() {
        let mut h = Histogram::new();
        h.record(4);
        let snap = h.clone();
        h.record(100);
        h.record(100);
        let d = h.saturating_sub(&snap);
        assert_eq!(d.count(), 2);
        assert_eq!(d.tail_at_least(64), 2);
        assert_eq!(
            d.tail_at_least(1) - d.tail_at_least(64),
            0,
            "old sample removed"
        );
        // Subtracting from an equal snapshot yields an all-zero histogram.
        let z = snap.saturating_sub(&snap.clone());
        assert_eq!(z.count(), 0);
    }

    #[test]
    fn iter_lists_bucket_bounds() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(100);
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(0, 1), (64, 1)]);
    }
}
