//! Host-side self-profiling: where does the *simulator* spend wall
//! time?
//!
//! The simulated results answer "how fast is the modelled machine";
//! this module answers "how fast is the model", so hot-path PRs can
//! show before/after numbers instead of eyeballing `time` output. It
//! is strictly host-side observability:
//!
//! * **No simulated state is read or written.** A [`ProfScope`] /
//!   [`ProfLap`] only reads the host clock and adds into its own
//!   atomic accumulators, so simulated results are byte-identical with
//!   profiling off *and* on (asserted in `dgl-sim`'s tests).
//! * **No-op unless enabled.** Callers hold an
//!   `Option<Arc<ProfRegistry>>`; with `None`,
//!   [`ProfScope::enter`] and the lap timer are a single branch and no
//!   clock is read.
//! * **Never serialized into manifests.** Like
//!   `RunReport::host_wall`, profiles are machine-dependent and are
//!   reported (CLI tables, trajectory `host` section) but excluded
//!   from the deterministic simulated-metric set.
//!
//! Two measurement idioms:
//!
//! * [`ProfScope`] — RAII guard for a self-contained region (a memory
//!   hierarchy access, a squash). Costs two clock reads per region.
//! * [`ProfLap`] — a chained timer for *partitioning* a loop body into
//!   consecutive stages: one clock read per boundary, and the stage
//!   times sum exactly to the measured span (no unmeasured gaps
//!   between scopes), which is what makes the "stage sum ≈ run
//!   wall-clock" report meaningful.
//!
//! # Examples
//!
//! ```
//! use dgl_stats::prof::{ProfLap, ProfRegistry, ProfScope};
//!
//! let mut reg = ProfRegistry::new();
//! let work = reg.slot("work");
//! let cleanup = reg.slot_nested("cleanup"); // also counted inside `work`
//!
//! {
//!     let _outer = ProfScope::enter(Some((&reg, work)));
//!     let _inner = ProfScope::enter(Some((&reg, cleanup)));
//! }
//! // Disabled call sites pass None and pay one branch, no clock read.
//! let _off = ProfScope::enter(None);
//!
//! let report = reg.snapshot();
//! assert_eq!(report.entries.len(), 2);
//! assert_eq!(report.entries[0].calls, 1);
//! ```

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Index of a slot inside one [`ProfRegistry`] (returned by
/// [`ProfRegistry::slot`], cheap to copy into hot loops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfId(usize);

#[derive(Debug)]
struct ProfSlot {
    name: &'static str,
    /// Nested slots are *also* counted inside an enclosing top-level
    /// slot (e.g. squash recovery runs inside the execute stage), so
    /// reports exclude them from the partition sum.
    nested: bool,
    ns: AtomicU64,
    calls: AtomicU64,
}

/// A registry of named wall-time accumulators.
///
/// Accumulators are atomic, so one registry may be shared (via `Arc`)
/// by every worker thread of an experiment matrix to profile the whole
/// run at once.
#[derive(Debug, Default)]
pub struct ProfRegistry {
    slots: Vec<ProfSlot>,
}

impl ProfRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a top-level accumulator. Top-level slots are expected
    /// to partition the measured span; their sum is the report's
    /// "stages" total.
    pub fn slot(&mut self, name: &'static str) -> ProfId {
        self.push(name, false)
    }

    /// Registers a nested accumulator: a region that already runs
    /// inside a top-level slot (its time is counted twice on purpose,
    /// and reports exclude it from the partition sum).
    pub fn slot_nested(&mut self, name: &'static str) -> ProfId {
        self.push(name, true)
    }

    fn push(&mut self, name: &'static str, nested: bool) -> ProfId {
        self.slots.push(ProfSlot {
            name,
            nested,
            ns: AtomicU64::new(0),
            calls: AtomicU64::new(0),
        });
        ProfId(self.slots.len() - 1)
    }

    /// The slot registered under `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<ProfId> {
        self.slots.iter().position(|s| s.name == name).map(ProfId)
    }

    /// Adds one call of `ns` nanoseconds to a slot (the primitive the
    /// guards are built on).
    pub fn add(&self, id: ProfId, ns: u64) {
        let slot = &self.slots[id.0];
        slot.ns.fetch_add(ns, Ordering::Relaxed);
        slot.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `calls` calls totalling `ns` nanoseconds to a slot in one
    /// atomic batch (how a [`ProfAccum`] flushes).
    pub fn add_many(&self, id: ProfId, ns: u64, calls: u64) {
        let slot = &self.slots[id.0];
        slot.ns.fetch_add(ns, Ordering::Relaxed);
        slot.calls.fetch_add(calls, Ordering::Relaxed);
    }

    /// A point-in-time copy of every accumulator, in registration
    /// order.
    pub fn snapshot(&self) -> ProfReport {
        ProfReport {
            entries: self
                .slots
                .iter()
                .map(|s| ProfEntry {
                    name: s.name,
                    nested: s.nested,
                    ns: s.ns.load(Ordering::Relaxed),
                    calls: s.calls.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// RAII guard measuring one region into a slot.
///
/// Construct with [`ProfScope::enter`]; the elapsed time is added when
/// the guard drops. With `reg = None` (profiling disabled) nothing is
/// measured and no clock is read.
#[must_use = "a ProfScope measures until it is dropped"]
#[derive(Debug)]
pub struct ProfScope<'a> {
    active: Option<(&'a ProfRegistry, ProfId, Instant)>,
}

impl<'a> ProfScope<'a> {
    /// Starts measuring a `(registry, slot)` pair; no-op on `None`
    /// (profiling disabled — call sites then hold no `ProfId` at all).
    pub fn enter(target: Option<(&'a ProfRegistry, ProfId)>) -> Self {
        Self {
            active: target.map(|(r, id)| (r, id, Instant::now())),
        }
    }
}

impl Drop for ProfScope<'_> {
    fn drop(&mut self) {
        if let Some((reg, id, t0)) = self.active.take() {
            reg.add(id, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// A chained stage timer: each [`mark`](Self::mark) attributes the
/// time since the previous mark (or construction) to one slot, with a
/// single clock read per boundary. Consecutive marks therefore
/// partition the measured span exactly — stage sums have no
/// instrumentation gaps, unlike back-to-back [`ProfScope`]s.
#[derive(Debug)]
pub struct ProfLap<'a> {
    reg: &'a ProfRegistry,
    last: Instant,
}

impl<'a> ProfLap<'a> {
    /// Starts the lap clock.
    pub fn start(reg: &'a ProfRegistry) -> Self {
        Self {
            reg,
            last: Instant::now(),
        }
    }

    /// Closes the current segment into `id` and starts the next one.
    pub fn mark(&mut self, id: ProfId) {
        let now = Instant::now();
        self.reg
            .add(id, now.duration_since(self.last).as_nanos() as u64);
        self.last = now;
    }
}

/// A thread-local (unsynchronized) accumulator batching many
/// measurements before one atomic flush into a shared
/// [`ProfRegistry`].
///
/// The registry's atomic slots make cross-thread sharing safe, but a
/// hot loop adding to them every tick pays two contended RMWs per
/// measurement. A `ProfAccum` keeps plain counters instead; the owner
/// adds locally (no atomics, no sharing) and calls
/// [`flush`](Self::flush) once at a natural boundary (end of a run),
/// so the shared slots see one add per slot per flush. Totals are
/// identical either way — addition is associative — only the flush
/// granularity changes.
#[derive(Debug, Default, Clone)]
pub struct ProfAccum {
    /// `(ns, calls)` per slot index; grown on demand.
    counts: Vec<(u64, u64)>,
}

impl ProfAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one call of `ns` nanoseconds to `id`, locally.
    pub fn add(&mut self, id: ProfId, ns: u64) {
        if self.counts.len() <= id.0 {
            self.counts.resize(id.0 + 1, (0, 0));
        }
        let (t, c) = &mut self.counts[id.0];
        *t += ns;
        *c += 1;
    }

    /// Adds `calls` calls totalling `ns` nanoseconds to `id`, locally
    /// (for merging a sub-accumulator).
    pub fn add_many(&mut self, id: ProfId, ns: u64, calls: u64) {
        if self.counts.len() <= id.0 {
            self.counts.resize(id.0 + 1, (0, 0));
        }
        let (t, c) = &mut self.counts[id.0];
        *t += ns;
        *c += calls;
    }

    /// Flushes every nonzero slot into `reg` and resets the local
    /// counters.
    pub fn flush(&mut self, reg: &ProfRegistry) {
        for (i, (ns, calls)) in self.counts.iter_mut().enumerate() {
            if *calls > 0 {
                reg.add_many(ProfId(i), *ns, *calls);
            }
            *ns = 0;
            *calls = 0;
        }
    }
}

/// One accumulator's totals in a [`ProfReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfEntry {
    /// Slot name (e.g. `fetch_decode`, `mem.hierarchy`).
    pub name: &'static str,
    /// Whether this region is also counted inside a top-level slot.
    pub nested: bool,
    /// Total measured nanoseconds.
    pub ns: u64,
    /// Number of measured calls/segments.
    pub calls: u64,
}

/// A host-time profile snapshot: plain data, detached from the
/// registry, carried on `RunReport`s and rendered by the CLI.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfReport {
    /// Accumulator totals in registration order.
    pub entries: Vec<ProfEntry>,
}

impl ProfReport {
    /// Whether anything was measured.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.calls == 0)
    }

    /// Sum of the **top-level** (non-nested) slots: the partition
    /// total compared against the run's wall-clock.
    pub fn stage_total(&self) -> Duration {
        Duration::from_nanos(
            self.entries
                .iter()
                .filter(|e| !e.nested)
                .map(|e| e.ns)
                .sum(),
        )
    }

    /// Adds another report's accumulators into this one, matching by
    /// name (e.g. merging per-window profiles of a sampled run).
    pub fn merge(&mut self, other: &ProfReport) {
        for e in &other.entries {
            match self.entries.iter_mut().find(|m| m.name == e.name) {
                Some(mine) => {
                    mine.ns += e.ns;
                    mine.calls += e.calls;
                }
                None => self.entries.push(*e),
            }
        }
    }

    /// Renders the host-time-by-stage table: top-level slots sorted by
    /// descending time with their share of `wall`, nested slots
    /// after, and a coverage footer. `wall` is the enclosing
    /// wall-clock measurement (e.g. `RunReport::host_wall`).
    pub fn render(&self, wall: Duration) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let wall_ns = wall.as_nanos().max(1) as f64;
        let mut stages: Vec<&ProfEntry> = self.entries.iter().filter(|e| !e.nested).collect();
        stages.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.name.cmp(b.name)));
        let _ = writeln!(
            out,
            "  {:<14} {:>10} {:>7} {:>12}",
            "stage", "time ms", "% wall", "calls"
        );
        for e in &stages {
            let _ = writeln!(
                out,
                "  {:<14} {:>10.3} {:>6.1}% {:>12}",
                e.name,
                e.ns as f64 / 1e6,
                100.0 * e.ns as f64 / wall_ns,
                e.calls,
            );
        }
        for e in self.entries.iter().filter(|e| e.nested) {
            let _ = writeln!(
                out,
                "  {:<14} {:>10.3} {:>6.1}% {:>12}  (nested: also counted in its stage)",
                e.name,
                e.ns as f64 / 1e6,
                100.0 * e.ns as f64 / wall_ns,
                e.calls,
            );
        }
        let total = self.stage_total();
        let _ = writeln!(
            out,
            "  stages sum {:.3} ms = {:.1}% of {:.3} ms wall",
            total.as_secs_f64() * 1e3,
            100.0 * total.as_nanos() as f64 / wall_ns,
            wall.as_secs_f64() * 1e3,
        );
        out
    }

    /// Exports the profile as JSON (`{name: {ns, calls, nested}}`,
    /// registration order). Host-side data: belongs under a `host`
    /// section, never among simulated metrics.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        for e in &self.entries {
            obj = obj.field(
                e.name,
                Json::object()
                    .field("ns", Json::uint(e.ns))
                    .field("calls", Json::uint(e.calls))
                    .field("nested", Json::Bool(e.nested)),
            );
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_accumulates_and_disabled_scope_is_free() {
        let mut reg = ProfRegistry::new();
        let a = reg.slot("a");
        {
            let _s = ProfScope::enter(Some((&reg, a)));
            std::hint::black_box(1 + 1);
        }
        let _off = ProfScope::enter(None);
        drop(_off);
        let rep = reg.snapshot();
        assert_eq!(rep.entries[0].calls, 1, "disabled scope must not count");
    }

    #[test]
    fn lap_partitions_a_span_exactly() {
        let mut reg = ProfRegistry::new();
        let a = reg.slot("a");
        let b = reg.slot("b");
        let t0 = Instant::now();
        let mut lap = ProfLap::start(&reg);
        std::thread::sleep(Duration::from_millis(2));
        lap.mark(a);
        std::thread::sleep(Duration::from_millis(2));
        lap.mark(b);
        let span = t0.elapsed();
        let rep = reg.snapshot();
        let sum = rep.stage_total();
        assert!(sum <= span, "lap segments cannot exceed the span");
        assert!(
            sum >= span / 2,
            "lap segments must cover most of the span: {sum:?} vs {span:?}"
        );
        assert_eq!(rep.entries[0].calls, 1);
        assert_eq!(rep.entries[1].calls, 1);
    }

    #[test]
    fn nested_slots_are_excluded_from_the_stage_total() {
        let mut reg = ProfRegistry::new();
        let top = reg.slot("top");
        let sub = reg.slot_nested("sub");
        reg.add(top, 1_000);
        reg.add(sub, 400);
        let rep = reg.snapshot();
        assert_eq!(rep.stage_total(), Duration::from_nanos(1_000));
        assert!(!rep.is_empty());
        let text = rep.render(Duration::from_nanos(1_000));
        assert!(text.contains("nested"), "{text}");
        assert!(text.contains("100.0% of"), "{text}");
    }

    #[test]
    fn report_merges_by_name_and_exports_json() {
        let mut reg = ProfRegistry::new();
        let a = reg.slot("a");
        reg.add(a, 10);
        let mut rep = reg.snapshot();
        rep.merge(&reg.snapshot());
        assert_eq!(rep.entries[0].ns, 20);
        assert_eq!(rep.entries[0].calls, 2);
        let doc = rep.to_json();
        assert_eq!(
            doc.get("a")
                .and_then(|v| v.get("ns"))
                .and_then(Json::as_u64),
            Some(20)
        );
    }

    #[test]
    fn index_of_finds_registered_slots() {
        let mut reg = ProfRegistry::new();
        let a = reg.slot("alpha");
        assert_eq!(reg.index_of("alpha"), Some(a));
        assert_eq!(reg.index_of("beta"), None);
    }
}
