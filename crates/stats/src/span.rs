//! Host-side span timing: the lifecycle layer over the structured log.
//!
//! A [`SpanCollector`] records named wall-clock intervals ("spans") on
//! numbered tracks (one track per worker thread), with nesting depth,
//! so a serve job's lifecycle — queue wait → checkpoint-store planning
//! → per-window simulation → manifest write — becomes an inspectable
//! timeline instead of a single `run_us` total. Collectors are cheap
//! clonable handles around shared state; [`SpanGuard`] records a span
//! RAII-style on drop, and keeps a per-track stack of *open* spans so
//! a crash handler can report exactly what the worker was doing.
//!
//! Spans are host-side observability only: they time the simulator,
//! they never feed back into it, so simulated results are byte-
//! identical with span collection on or off.
//!
//! The serialized form (`dgl-spans` v1) round-trips through the strict
//! [`Json`] parser and is what `dgl explain --spans` renders offline;
//! `dgl-trace`'s Chrome exporter turns the same records into Perfetto
//! tracks next to the simulated-cycle trace.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema identifier of a serialized span set.
pub const SPANS_SCHEMA: &str = "dgl-spans";
/// Span set schema version.
pub const SPANS_VERSION: u64 = 1;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (`queue`, `ckpt_plan`, `simulate`, ...). Aggregation
    /// keys on this, so keep it a small closed vocabulary per target.
    pub name: String,
    /// Track (worker index); one Perfetto thread per track.
    pub track: u32,
    /// Start, microseconds since the collector's origin.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth at record time (0 = top level).
    pub depth: u32,
    /// Free-form detail (job id, window count); not aggregated.
    pub detail: String,
}

#[derive(Debug, Default)]
struct SpanState {
    spans: Vec<SpanRecord>,
    /// Open span names per track, outermost first.
    open: BTreeMap<u32, Vec<String>>,
    /// Spans that were open when a panic unwound them, innermost first.
    unwound: Vec<String>,
}

#[derive(Debug)]
struct Inner {
    origin: Instant,
    state: Mutex<SpanState>,
}

/// Clonable collector of [`SpanRecord`]s sharing one origin instant.
#[derive(Debug, Clone)]
pub struct SpanCollector {
    inner: Arc<Inner>,
}

impl Default for SpanCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanCollector {
    /// New collector; its origin is `now`.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                origin: Instant::now(),
                state: Mutex::new(SpanState::default()),
            }),
        }
    }

    /// Microseconds since this collector's origin.
    pub fn now_us(&self) -> u64 {
        self.inner.origin.elapsed().as_micros() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SpanState> {
        self.inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a span on `track`; it is recorded when the guard drops.
    /// Depth is the number of currently open spans on the track.
    pub fn begin(&self, track: u32, name: &str) -> SpanGuard {
        let start_us = self.now_us();
        let depth = {
            let mut st = self.lock();
            let stack = st.open.entry(track).or_default();
            stack.push(name.to_owned());
            (stack.len() - 1) as u32
        };
        SpanGuard {
            collector: self.clone(),
            track,
            name: name.to_owned(),
            detail: String::new(),
            start_us,
            depth,
        }
    }

    /// Records a completed span explicitly (e.g. queue wait, whose
    /// start predates the worker picking the job up).
    pub fn record(&self, track: u32, name: &str, start_us: u64, dur_us: u64, detail: &str) {
        self.lock().spans.push(SpanRecord {
            name: name.to_owned(),
            track,
            start_us,
            dur_us,
            depth: 0,
            detail: detail.to_owned(),
        });
    }

    /// Names of spans currently open on `track`, outermost first.
    pub fn active_stack(&self, track: u32) -> Vec<String> {
        self.lock().open.get(&track).cloned().unwrap_or_default()
    }

    /// Spans that a panic unwound (innermost first), drained. Combined
    /// with [`active_stack`](Self::active_stack) this reconstructs what
    /// a worker was doing when it died.
    pub fn take_unwound(&self) -> Vec<String> {
        std::mem::take(&mut self.lock().unwound)
    }

    /// All completed spans so far, sorted by `(track, start_us)`.
    pub fn finish(&self) -> Vec<SpanRecord> {
        let mut spans = self.lock().spans.clone();
        spans.sort_by_key(|a| (a.track, a.start_us, a.depth));
        spans
    }
}

/// RAII handle for an open span; records it on drop. If the drop
/// happens during a panic unwind the span is also remembered in the
/// collector's unwound list for post-mortem reporting.
#[derive(Debug)]
pub struct SpanGuard {
    collector: SpanCollector,
    track: u32,
    name: String,
    detail: String,
    start_us: u64,
    depth: u32,
}

impl SpanGuard {
    /// Attaches free-form detail recorded with the span.
    pub fn detail(&mut self, detail: &str) {
        self.detail = detail.to_owned();
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_us = self.collector.now_us().saturating_sub(self.start_us);
        let mut st = self.collector.lock();
        if let Some(stack) = st.open.get_mut(&self.track) {
            if let Some(pos) = stack.iter().rposition(|n| n == &self.name) {
                stack.remove(pos);
            }
        }
        if std::thread::panicking() {
            st.unwound.push(self.name.clone());
        }
        st.spans.push(SpanRecord {
            name: std::mem::take(&mut self.name),
            track: self.track,
            start_us: self.start_us,
            dur_us,
            depth: self.depth,
            detail: std::mem::take(&mut self.detail),
        });
    }
}

/// Serializes spans as a `dgl-spans` v1 document.
pub fn spans_to_json(spans: &[SpanRecord]) -> Json {
    let mut arr = Json::array();
    for s in spans {
        arr = arr.push(
            Json::object()
                .field("name", Json::str(s.name.clone()))
                .field("track", Json::uint(s.track as u64))
                .field("start_us", Json::uint(s.start_us))
                .field("dur_us", Json::uint(s.dur_us))
                .field("depth", Json::uint(s.depth as u64))
                .field("detail", Json::str(s.detail.clone())),
        );
    }
    Json::object()
        .field("schema", Json::str(SPANS_SCHEMA))
        .field("version", Json::uint(SPANS_VERSION))
        .field("spans", arr)
}

/// Parses a `dgl-spans` v1 document back into records.
///
/// # Errors
///
/// Names the missing or mistyped field.
pub fn spans_from_json(doc: &Json) -> Result<Vec<SpanRecord>, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("span document lacks a `schema` field")?;
    if schema != SPANS_SCHEMA {
        return Err(format!(
            "unsupported schema `{schema}` (expected {SPANS_SCHEMA})"
        ));
    }
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("span document lacks a `version` field")?;
    if version != SPANS_VERSION {
        return Err(format!(
            "unsupported version {version} (expected {SPANS_VERSION})"
        ));
    }
    let arr = doc
        .get("spans")
        .and_then(Json::as_array)
        .ok_or("span document lacks a `spans` array")?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, node) in arr.iter().enumerate() {
        let field_u64 = |key: &str| {
            node.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("span {i}: field `{key}` must be a non-negative integer"))
        };
        out.push(SpanRecord {
            name: node
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("span {i}: field `name` must be a string"))?
                .to_owned(),
            track: field_u64("track")? as u32,
            start_us: field_u64("start_us")?,
            dur_us: field_u64("dur_us")?,
            depth: field_u64("depth")? as u32,
            detail: node
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
        });
    }
    Ok(out)
}

/// Renders the span timing table `dgl explain --spans` shows: one
/// aggregate row per span name (count, total, mean, max) followed by a
/// per-track timeline with depth indentation.
pub fn render_spans(spans: &[SpanRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if spans.is_empty() {
        out.push_str("(no spans recorded)\n");
        return out;
    }
    let mut agg: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for s in spans {
        let e = agg.entry(&s.name).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += s.dur_us;
        e.2 = e.2.max(s.dur_us);
    }
    let _ = writeln!(
        out,
        "{:16} {:>6} {:>12} {:>12} {:>12}",
        "span", "count", "total_us", "mean_us", "max_us"
    );
    for (name, (count, total, max)) in &agg {
        let _ = writeln!(
            out,
            "{name:16} {count:>6} {total:>12} {:>12.0} {max:>12}",
            *total as f64 / *count as f64
        );
    }
    out.push('\n');
    let mut track = None;
    for s in spans {
        if track != Some(s.track) {
            track = Some(s.track);
            let _ = writeln!(out, "track {}:", s.track);
        }
        let _ = writeln!(
            out,
            "  {:>10} +{:>9} us  {}{}{}",
            s.start_us,
            s.dur_us,
            "  ".repeat(s.depth as usize),
            s.name,
            if s.detail.is_empty() {
                String::new()
            } else {
                format!(" ({})", s.detail)
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_record_nesting_and_stacks() {
        let c = SpanCollector::new();
        {
            let _outer = c.begin(0, "job");
            assert_eq!(c.active_stack(0), vec!["job"]);
            {
                let mut inner = c.begin(0, "simulate");
                inner.detail("w=3");
                assert_eq!(c.active_stack(0), vec!["job", "simulate"]);
            }
            assert_eq!(c.active_stack(0), vec!["job"]);
        }
        assert!(c.active_stack(0).is_empty());
        c.record(1, "queue", 0, 42, "");
        let spans = c.finish();
        assert_eq!(spans.len(), 3);
        // Sorted by (track, start): track 0 first.
        assert_eq!(spans[0].name, "job");
        assert_eq!(spans[0].depth, 0);
        let sim = spans.iter().find(|s| s.name == "simulate").unwrap();
        assert_eq!(sim.depth, 1);
        assert_eq!(sim.detail, "w=3");
        assert_eq!(spans[2].name, "queue");
        assert_eq!(spans[2].track, 1);
        assert_eq!(spans[2].dur_us, 42);
    }

    #[test]
    fn panicking_guard_lands_in_the_unwound_list() {
        let c = SpanCollector::new();
        let c2 = c.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _g = c2.begin(0, "doomed");
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(c.take_unwound(), vec!["doomed"]);
        assert!(c.take_unwound().is_empty(), "drained");
        assert!(c.active_stack(0).is_empty(), "stack still popped");
        assert_eq!(c.finish().len(), 1, "span still recorded");
    }

    #[test]
    fn json_round_trip_is_lossless_and_strict() {
        let c = SpanCollector::new();
        c.record(0, "queue", 5, 10, "id=j1");
        c.record(0, "simulate", 15, 100, "");
        let spans = c.finish();
        let doc = spans_to_json(&spans);
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).expect("strict parse");
        assert_eq!(spans_from_json(&back).expect("decode"), spans);
        assert!(
            spans_from_json(&Json::object().field("schema", Json::str("nope")))
                .unwrap_err()
                .contains("nope")
        );
    }

    #[test]
    fn render_aggregates_by_name() {
        let c = SpanCollector::new();
        c.record(0, "simulate", 0, 30, "");
        c.record(0, "simulate", 40, 10, "");
        c.record(1, "queue", 0, 4, "id=a");
        let text = render_spans(&c.finish());
        assert!(text.contains("simulate"), "{text}");
        assert!(text.contains("track 1:"), "{text}");
        assert!(text.contains("(id=a)"), "{text}");
        let agg_line = text.lines().find(|l| l.starts_with("simulate")).unwrap();
        assert!(agg_line.contains("40"), "total: {agg_line}");
        assert_eq!(render_spans(&[]), "(no spans recorded)\n");
    }
}
