//! Statistics and report-rendering utilities for the Doppelganger Loads
//! simulator.
//!
//! This crate is deliberately free of simulator dependencies: it deals in
//! plain numbers. It provides
//!
//! * [`Counter`] — a named, saturating event counter,
//! * [`MetricsRegistry`] — named counters/gauges/histograms that
//!   components publish for snapshot/delta/merge and JSON export,
//! * [`Json`] — the dependency-free JSON value (writer + parser) the
//!   machine-readable exports are built on,
//! * [`log`] — structured JSON-lines logging with a swappable global
//!   sink (the host-side observability channel),
//! * [`span`] — host-side span timing (queue wait, checkpoint
//!   planning, simulation, manifest write) with post-mortem stacks,
//! * [`prom`] — Prometheus text exposition of a [`MetricsRegistry`]
//!   snapshot, agreeing with the JSON encoding value-for-value,
//! * [`prof`] — host-side self-profiling (scoped wall-time
//!   accumulators) for finding the simulator's own hot paths,
//! * [`geomean`] / [`normalize`] — the aggregations the paper uses for its
//!   figures (normalized IPC, geometric-mean slowdowns),
//! * [`Table`] — ASCII table rendering for experiment reports,
//! * [`BarChart`] / [`chart::sparkline`] — ASCII charts that stand in
//!   for the paper's figures (and occupancy time series) in terminal
//!   output.
//!
//! # Examples
//!
//! ```
//! use dgl_stats::{geomean, normalize};
//!
//! let baseline = [2.0, 1.0];
//! let scheme = [1.8, 0.8];
//! let normalized = normalize(&scheme, &baseline);
//! assert!((normalized[0] - 0.9).abs() < 1e-12);
//! let g = geomean(&normalized);
//! assert!(g > 0.84 && g < 0.85);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod counter;
pub mod histogram;
pub mod json;
pub mod log;
pub mod prof;
pub mod prom;
pub mod registry;
pub mod span;
pub mod summary;
pub mod table;

pub use chart::{BarChart, StackedBarChart};
pub use counter::{Counter, CounterSet};
pub use histogram::Histogram;
pub use json::Json;
pub use prof::{ProfAccum, ProfId, ProfLap, ProfRegistry, ProfReport, ProfScope};
pub use registry::{Metric, MetricsRegistry};
pub use span::{SpanCollector, SpanGuard, SpanRecord};
pub use summary::{geomean, harmonic_mean, mean, normalize, percent_change, Summary};
pub use table::{Align, Table};
