//! Statistics and report-rendering utilities for the Doppelganger Loads
//! simulator.
//!
//! This crate is deliberately free of simulator dependencies: it deals in
//! plain numbers. It provides
//!
//! * [`Counter`] — a named, saturating event counter,
//! * [`geomean`] / [`normalize`] — the aggregations the paper uses for its
//!   figures (normalized IPC, geometric-mean slowdowns),
//! * [`Table`] — ASCII table rendering for experiment reports,
//! * [`BarChart`] — ASCII horizontal bar charts that stand in for the
//!   paper's figures in terminal output.
//!
//! # Examples
//!
//! ```
//! use dgl_stats::{geomean, normalize};
//!
//! let baseline = [2.0, 1.0];
//! let scheme = [1.8, 0.8];
//! let normalized = normalize(&scheme, &baseline);
//! assert!((normalized[0] - 0.9).abs() < 1e-12);
//! let g = geomean(&normalized);
//! assert!(g > 0.84 && g < 0.85);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod counter;
pub mod histogram;
pub mod summary;
pub mod table;

pub use chart::BarChart;
pub use counter::{Counter, CounterSet};
pub use histogram::Histogram;
pub use summary::{geomean, harmonic_mean, mean, normalize, percent_change, Summary};
pub use table::{Align, Table};
