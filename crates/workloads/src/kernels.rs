//! Parameterized kernel generators.
//!
//! Each generator returns a `(Program, SparseMemory)` pair. Register
//! conventions: `r1..r9` kernel state, `r10+` scratch. All kernels halt.

use dgl_isa::{Program, ProgramBuilder, Reg, SparseMemory};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Base address of the first data region; regions are spaced far apart.
pub const REGION_A: i64 = 0x0100_0000;
/// Second data region.
pub const REGION_B: i64 = 0x0800_0000;
/// Third data region.
pub const REGION_C: i64 = 0x1000_0000;

/// Pure streaming: `c[i] = f(a[i])` over `iters` elements with the given
/// byte stride. Every line is touched once (cold misses all the way to
/// DRAM) and addresses are perfectly stride-predictable. This is the
/// `libquantum`-like shape: the standout case for address prediction
/// under secure schemes.
///
/// `branch_mask` adds a rarely-taken branch on the loaded value (taken
/// when `value & mask == 0`). Such a branch is well *predicted* but
/// cannot *resolve* until the load returns, so it keeps younger
/// instructions under a control shadow for the full miss latency —
/// which is exactly what the secure schemes charge for.
pub fn streaming(
    name: &str,
    iters: i64,
    stride: i32,
    compute_ops: usize,
    branch_mask: Option<i32>,
    pad: usize,
) -> (Program, SparseMemory) {
    let mut b = ProgramBuilder::new(name);
    b.imm(r(1), REGION_A)
        .imm(r(2), REGION_B)
        .imm(r(3), iters)
        .imm(r(4), 0)
        .imm(r(9), 0x1111)
        .label("top")
        .load(r(5), r(1), 0);
    if let Some(mask) = branch_mask {
        b.andi(r(7), r(5), mask)
            .bne(r(7), Reg::ZERO, "common")
            .addi(r(4), r(4), 13) // rare path
            .label("common");
    }
    for _ in 0..compute_ops {
        b.add(r(4), r(4), r(5));
        b.shri(r(5), r(5), 1);
    }
    for i in 0..pad {
        b.addi(r(9), r(9), 0x31)
            .xor(r(9), r(9), r(4))
            .shli(r(9), r(9), (i % 2) as i32 + 1);
    }
    b.store(r(4), r(2), 0)
        .addi(r(1), r(1), stride)
        .addi(r(2), r(2), stride)
        .subi(r(3), r(3), 1)
        .bne(r(3), Reg::ZERO, "top")
        .halt();
    let mut mem = SparseMemory::new();
    let mut rng = SmallRng::seed_from_u64(0x11);
    for i in 0..iters {
        mem.write_u64(
            (REGION_A + i * stride as i64) as u64,
            rng.gen::<u32>() as u64 | 1,
        );
    }
    (b.build().expect("streaming kernel"), mem)
}

/// Indirect streaming: `v = b[a[i]]; if ((v & mask) == 0) rare;
/// acc += v`. The index array holds sequential indices, so the
/// *dependent* load is stride-predictable — the bread-and-butter case
/// for doppelganger loads under NDA-P/STT. `table_words` controls which
/// level the dependent load hits.
///
/// `branch_mask` adds the load-fed branch that keeps shadows alive for
/// the duration of the miss: table values have bit 0 set, so a mask
/// with bit 0 makes the branch never-taken (perfectly predicted, yet
/// unresolvable until the data arrives).
/// `unroll` dependent-load pairs execute per loop iteration, but only
/// the first carries the shadow-casting branch — the knob controlling
/// how much of the instruction stream sits under long shadows. `pad`
/// appends independent ALU work, as real compression/compilation
/// kernels interleave arithmetic with their table lookups.
pub fn indirect_stream(
    name: &str,
    iters: i64,
    table_words: u64,
    branch_mask: Option<i32>,
    unroll: usize,
    pad: usize,
    seed: u64,
) -> (Program, SparseMemory) {
    indirect_stream_wrapped(
        name,
        iters,
        table_words,
        branch_mask,
        unroll,
        pad,
        None,
        seed,
    )
}

/// [`indirect_stream`] with an optionally *wrapping* index array:
/// `index_wrap` bytes of indices are reused cyclically, so with a small
/// wrap the whole working set (indices + table) stays L1-resident —
/// the `hmmer`-like shape where even Delay-on-Miss loses little.
#[allow(clippy::too_many_arguments)] // a kernel generator is all knobs
pub fn indirect_stream_wrapped(
    name: &str,
    iters: i64,
    table_words: u64,
    branch_mask: Option<i32>,
    unroll: usize,
    pad: usize,
    index_wrap: Option<u64>,
    seed: u64,
) -> (Program, SparseMemory) {
    assert!(unroll >= 1, "unroll factor must be at least 1");
    let mut b = ProgramBuilder::new(name);
    b.imm(r(1), REGION_A) // index array
        .imm(r(2), REGION_B) // table
        .imm(r(3), iters)
        .imm(r(4), 0)
        .imm(r(9), 0x7373);
    if let Some(w) = index_wrap {
        b.imm(r(11), REGION_A + w as i64); // wrap limit
    }
    b.label("top");
    for u in 0..unroll {
        b.load(r(5), r(1), 8 * u as i32) // idx
            .shli(r(6), r(5), 3)
            .add(r(6), r(6), r(2))
            .load(r(7), r(6), 0); // dependent load
        if u == 0 {
            if let Some(mask) = branch_mask {
                b.andi(r(8), r(7), mask)
                    .bne(r(8), Reg::ZERO, "skip")
                    .addi(r(4), r(4), 7) // rare path
                    .label("skip");
            }
        }
        b.add(r(4), r(4), r(7));
    }
    for i in 0..pad {
        b.addi(r(9), r(9), 0x1d)
            .xor(r(9), r(9), r(4))
            .shri(r(9), r(9), (i % 2) as i32 + 1);
    }
    b.addi(r(1), r(1), 8 * unroll as i32);
    if index_wrap.is_some() {
        b.blt(r(1), r(11), "nowrap")
            .imm(r(1), REGION_A)
            .label("nowrap");
    }
    b.subi(r(3), r(3), 1).bne(r(3), Reg::ZERO, "top").halt();
    let mut mem = SparseMemory::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let index_words = index_wrap.map_or(iters * unroll as i64, |w| (w / 8) as i64);
    for i in 0..index_words {
        // Sequential walk through the table, wrapping at its size.
        mem.write_u64((REGION_A + i * 8) as u64, (i as u64) % table_words);
    }
    for w in 0..table_words {
        mem.write_u64(REGION_B as u64 + 8 * w, rng.gen::<u64>() | 1);
    }
    (b.build().expect("indirect kernel"), mem)
}

/// Byte offset between a node and its payload: payloads live in a cold
/// mirror region so that pointer structure (hot, warmable) and payload
/// data (cold, DRAM) behave like mcf's arcs vs. node data.
pub const CHASE_PAYLOAD_OFFSET: i64 = 0x1000_0000;

/// Per-lane spacing of chase regions (16 MiB: room for an L3-sized
/// pointer graph per lane while staying clear of [`REGION_B`]).
pub const CHASE_LANE_STRIDE: i64 = 0x0100_0000;

/// Start address of chase lane `l`'s node region.
pub fn chase_lane_region(l: u8) -> i64 {
    REGION_A + (l as i64) * CHASE_LANE_STRIDE
}

/// Multi-lane pointer chase: `lanes` independent shuffled linked lists
/// walked in lockstep — the classic `mcf`-like antagonist. Baseline
/// hardware overlaps the lanes' misses (MLP); each hop's payload feeds
/// a never-taken but data-dependent branch, so under the secure schemes
/// the younger lanes' loads sit under shadows for a full miss latency
/// and the MLP collapses. Pointer addresses are unpredictable; a small
/// strided bookkeeping load per iteration supplies the ~10% coverage
/// the paper reports for mcf. `pad` appends independent ALU work per
/// iteration (mcf does real arithmetic between hops), which dilutes the
/// per-hop penalty.
///
/// # Panics
///
/// Panics unless `1 <= lanes <= 4`, or if the lane footprint exceeds
/// the lane region.
pub fn pointer_chase(
    name: &str,
    iters: i64,
    nodes: u64,
    node_stride: u64,
    lanes: u8,
    pad: usize,
    seed: u64,
) -> (Program, SparseMemory) {
    assert!((1..=4).contains(&lanes), "1..=4 chase lanes supported");
    assert!(
        (nodes / lanes as u64) * node_stride <= CHASE_LANE_STRIDE as u64,
        "lane footprint exceeds the lane region"
    );
    let mut b = ProgramBuilder::new(name);
    // Lane cursors r1..=r4; counter r5; accumulator r6; scratch r7;
    // strided bookkeeping cursor r8; pad chain r9.
    for l in 0..lanes {
        b.imm(r(1 + l), chase_lane_region(l));
    }
    b.imm(r(5), iters)
        .imm(r(6), 0)
        .imm(r(8), REGION_B)
        .imm(r(9), 0x5a5a)
        .label("top");
    for l in 0..lanes {
        let skip = format!("skip{l}");
        // Payload from the cold mirror region: misses to DRAM while the
        // (warmable) pointer load hits — the latency split that makes
        // NDA/STT pay for locking the pointer until the payload branch
        // resolves.
        b.load(r(7), r(1 + l), CHASE_PAYLOAD_OFFSET as i32) // payload
            .load(r(1 + l), r(1 + l), 0) // next
            .andi(r(7), r(7), 1)
            .bne(r(7), Reg::ZERO, &skip) // never taken (payloads odd)
            .addi(r(6), r(6), 3)
            .label(&skip);
    }
    // Strided bookkeeping load (predictable: the paper's mcf coverage).
    b.load(r(7), r(8), 0)
        .add(r(6), r(6), r(7))
        .addi(r(8), r(8), 8);
    for i in 0..pad {
        b.addi(r(9), r(9), 0x11)
            .xor(r(9), r(9), r(6))
            .shli(r(9), r(9), (i % 2) as i32 + 1);
    }
    b.subi(r(5), r(5), 1).bne(r(5), Reg::ZERO, "top").halt();
    let mut mem = SparseMemory::new();
    let per_lane = (nodes / lanes as u64).max(8);
    for l in 0..lanes {
        let mut rng = SmallRng::seed_from_u64(seed ^ (0x9e37 * (l as u64 + 1)));
        // Random cyclic permutation over this lane's slots.
        let mut order: Vec<u64> = (1..per_lane).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let base = chase_lane_region(l) as u64;
        let slot_addr = |s: u64| base + s * node_stride;
        let mut cur = 0u64;
        for &next in &order {
            mem.write_u64(slot_addr(cur), slot_addr(next));
            mem.write_u64(
                slot_addr(cur) + CHASE_PAYLOAD_OFFSET as u64,
                (rng.gen::<u32>() as u64) | 1,
            );
            cur = next;
        }
        mem.write_u64(slot_addr(cur), slot_addr(0)); // close the cycle
        mem.write_u64(
            slot_addr(cur) + CHASE_PAYLOAD_OFFSET as u64,
            (rng.gen::<u32>() as u64) | 1,
        );
    }
    (b.build().expect("chase kernel"), mem)
}

/// Stride-run probing: the access stream follows a constant stride for
/// a short run, then jumps somewhere else and starts a new run. The
/// stride predictor gains confidence inside a run and mispredicts at
/// every break — the `xalancbmk`-like low-accuracy shape that floods
/// the L1 with useless doppelganger traffic.
pub fn stride_runs(
    name: &str,
    iters: i64,
    run_len: u64,
    region_words: u64,
    seed: u64,
) -> (Program, SparseMemory) {
    // The run structure is encoded in a precomputed address-offset
    // array: ao[i] = byte offset of access i. The *offsets themselves*
    // are loaded sequentially (predictable), while the probe load's
    // address follows the runs (predictable within a run only).
    let mut b = ProgramBuilder::new(name);
    b.imm(r(1), REGION_A) // offset array
        .imm(r(2), REGION_B) // probed table
        .imm(r(3), iters)
        .imm(r(4), 0)
        .label("top")
        .load(r(5), r(1), 0) // offset (sequential, predictable)
        .add(r(6), r(2), r(5))
        .load(r(7), r(6), 0) // probe (stride runs, breaks often)
        .add(r(4), r(4), r(7))
        .addi(r(1), r(1), 8)
        .subi(r(3), r(3), 1)
        .bne(r(3), Reg::ZERO, "top")
        .halt();
    let mut mem = SparseMemory::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pos = 0u64;
    let mut left = run_len;
    for i in 0..iters {
        if left == 0 {
            pos = rng.gen_range(0..region_words);
            left = run_len;
        }
        mem.write_u64((REGION_A + i * 8) as u64, (pos % region_words) * 8);
        pos += 8; // stride of 64 bytes within the table
        left -= 1;
    }
    for w in 0..region_words {
        mem.write_u64(REGION_B as u64 + 8 * w, rng.gen::<u32>() as u64);
    }
    (b.build().expect("stride-run kernel"), mem)
}

/// Compute-bound kernel: long ALU chains, a small L1-resident table,
/// and a semi-predictable branch. The `exchange2`/`sjeng`-like shape:
/// secure schemes cost little, address prediction gains little.
pub fn compute(
    name: &str,
    iters: i64,
    alu_chain: usize,
    table_words: u64,
    seed: u64,
) -> (Program, SparseMemory) {
    let mut b = ProgramBuilder::new(name);
    b.imm(r(1), REGION_A)
        .imm(r(2), iters)
        .imm(r(3), 0x12345)
        .imm(r(4), 0)
        .imm(r(9), (table_words * 8 - 8) as i64)
        .add(r(10), r(1), Reg::ZERO) // strided scan cursor
        .label("top");
    for i in 0..alu_chain {
        b.addi(r(3), r(3), 0x1f)
            .xor(r(3), r(3), r(2))
            .shli(r(5), r(3), (i % 3) as i32 + 1)
            .add(r(4), r(4), r(5));
    }
    // One L1-resident load with a data-dependent (unpredictable)
    // address, and one strided table scan whose stride breaks at each
    // wrap — the partially-predictable mix behind exchange2's ~80%
    // accuracy in Figure 7.
    b.andi(r(6), r(4), 0x78)
        .add(r(6), r(6), r(1))
        .load(r(7), r(6), 0)
        .add(r(4), r(4), r(7))
        .load(r(7), r(10), 0)
        .add(r(4), r(4), r(7))
        .addi(r(10), r(10), 8)
        .andi(r(6), r(10), (table_words as i32 * 8) - 1)
        .add(r(10), r(6), r(1))
        .andi(r(8), r(4), 7)
        .beq(r(8), Reg::ZERO, "skip")
        .addi(r(4), r(4), 3)
        .label("skip")
        .subi(r(2), r(2), 1)
        .bne(r(2), Reg::ZERO, "top")
        .halt();
    let mut mem = SparseMemory::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    for w in 0..table_words {
        mem.write_u64(REGION_A as u64 + 8 * w, rng.gen::<u16>() as u64);
    }
    (b.build().expect("compute kernel"), mem)
}

/// Multi-stream stencil: `out[i] = g0[i] + g1[i] + g2[i]` with a
/// working set sized to a chosen footprint. With an L2-resident grid
/// every access misses L1 but hits L2 — the `GemsFDTD`-like shape where
/// DoM suffers uniquely (it cannot touch L2 speculatively) and
/// doppelgangers restore its MLP.
pub fn stencil(
    name: &str,
    iters: i64,
    grid_words: u64,
    pad: usize,
    seed: u64,
) -> (Program, SparseMemory) {
    let g0 = REGION_A;
    let g1 = REGION_B;
    let out = REGION_C;
    let mut b = ProgramBuilder::new(name);
    b.imm(r(1), g0)
        .imm(r(2), g1)
        .imm(r(3), out)
        .imm(r(4), iters)
        .imm(r(9), (grid_words * 8) as i64)
        .imm(r(8), 0) // byte cursor, wraps at grid size
        .label("top")
        .add(r(5), r(1), r(8))
        .load(r(6), r(5), 0)
        // Load-fed never-taken branch: shadows last until the grid
        // value arrives (values are odd).
        .andi(r(10), r(6), 1)
        .bne(r(10), Reg::ZERO, "cont") // always taken (values odd)
        .addi(r(6), r(6), 1) // rare path
        .label("cont")
        .add(r(5), r(2), r(8))
        .load(r(7), r(5), 0)
        .add(r(6), r(6), r(7))
        .add(r(5), r(1), r(8))
        .load(r(7), r(5), 64) // neighbour line
        .add(r(6), r(6), r(7))
        .add(r(5), r(3), r(8))
        .store(r(6), r(5), 0);
    for i in 0..pad {
        b.addi(r(11), r(11), 0x2b)
            .xor(r(11), r(11), r(6))
            .shri(r(11), r(11), (i % 2) as i32 + 1);
    }
    b.addi(r(8), r(8), 64)
        .blt(r(8), r(9), "nowrap")
        .imm(r(8), 0)
        .label("nowrap")
        .subi(r(4), r(4), 1)
        .bne(r(4), Reg::ZERO, "top")
        .halt();
    let mut mem = SparseMemory::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    for w in 0..grid_words + 16 {
        mem.write_u64(g0 as u64 + 8 * w, (rng.gen::<u16>() as u64) | 1);
        mem.write_u64(g1 as u64 + 8 * w, rng.gen::<u16>() as u64);
    }
    (b.build().expect("stencil kernel"), mem)
}

/// Tree walk: repeated root-to-leaf descents of a pointer tree laid out
/// *linearly by level*, with the direction chosen by the node payload.
/// Dependent loads with partially regular addresses and data-dependent
/// branches — the `astar`/`deepsjeng`-like shape (decent coverage,
/// small gain: the branch is the bottleneck).
pub fn tree_walk(name: &str, iters: i64, depth: u32, seed: u64) -> (Program, SparseMemory) {
    // Node: [left_ptr, right_ptr, payload] = 24 bytes, padded to 32.
    let mut b = ProgramBuilder::new(name);
    b.imm(r(2), iters)
        .imm(r(3), 0)
        .imm(r(9), depth as i64)
        .imm(r(6), REGION_C) // "open list" base (L1-resident, wraps)
        .imm(r(10), 0) // open-list offset
        .label("outer")
        .imm(r(1), REGION_A) // root
        .imm(r(8), 0) // level counter
        .label("descend")
        .load(r(4), r(1), 16) // payload
        .add(r(3), r(3), r(4))
        // Strided bookkeeping load (the regular fraction of astar's
        // loads: open-list scans) — gives the partial coverage the
        // paper reports while the tree loads stay unpredictable.
        .add(r(11), r(6), r(10))
        .load(r(7), r(11), 0)
        .add(r(3), r(3), r(7))
        .addi(r(10), r(10), 8)
        .andi(r(10), r(10), 0x3fff) // wrap at 16 KiB
        .andi(r(5), r(4), 1)
        .beq(r(5), Reg::ZERO, "left")
        .load(r(1), r(1), 8) // right
        .jmp("next")
        .label("left")
        .load(r(1), r(1), 0) // left
        .label("next")
        .addi(r(8), r(8), 1)
        .blt(r(8), r(9), "descend")
        .subi(r(2), r(2), 1)
        .bne(r(2), Reg::ZERO, "outer")
        .halt();
    let mut mem = SparseMemory::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Complete binary tree, heap layout: node k at REGION_A + k*32.
    let nodes = (1u64 << (depth + 1)) - 1;
    for k in 0..nodes {
        let addr = REGION_A as u64 + k * 32;
        let l = 2 * k + 1;
        let rgt = 2 * k + 2;
        let wrap = |c: u64| REGION_A as u64 + (c % nodes) * 32;
        mem.write_u64(addr, wrap(l));
        mem.write_u64(addr + 8, wrap(rgt));
        mem.write_u64(addr + 16, rng.gen::<u16>() as u64);
    }
    (b.build().expect("tree kernel"), mem)
}

/// Chase-plus-churn: a pointer chase interleaved with bursty stores to
/// a second region — the `omnetpp`-like shape where doppelganger
/// traffic pollutes the L1 and *costs* a little performance.
pub fn chase_with_churn(
    name: &str,
    iters: i64,
    nodes: u64,
    churn_words: u64,
    seed: u64,
) -> (Program, SparseMemory) {
    let (_, mut mem) = pointer_chase("tmp", 1, nodes, 0x140, 1, 0, seed);
    let mut b = ProgramBuilder::new(name);
    b.imm(r(1), REGION_A)
        .imm(r(2), iters)
        .imm(r(3), 0)
        .imm(r(6), REGION_C)
        .imm(r(9), (churn_words * 8) as i64)
        .imm(r(8), 0)
        .label("top")
        .load(r(4), r(1), CHASE_PAYLOAD_OFFSET as i32)
        .load(r(1), r(1), 0)
        // Payload-dependent branch: keeps shadows alive across the miss.
        .andi(r(7), r(4), 1)
        .bne(r(7), Reg::ZERO, "nostep") // never taken (payloads odd)
        .addi(r(3), r(3), 1)
        .label("nostep")
        // Churny store+load pair walking a second region.
        .add(r(5), r(6), r(8))
        .store(r(4), r(5), 0)
        .load(r(7), r(5), 0)
        .add(r(3), r(3), r(7))
        .addi(r(8), r(8), 72) // deliberately line-crossing stride
        .blt(r(8), r(9), "nowrap")
        .imm(r(8), 0)
        .label("nowrap")
        .subi(r(2), r(2), 1)
        .bne(r(2), Reg::ZERO, "top")
        .halt();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0ffee);
    for w in 0..churn_words {
        mem.write_u64(REGION_C as u64 + 8 * w, rng.gen::<u16>() as u64);
    }
    (b.build().expect("churn kernel"), mem)
}

/// Interpreter dispatch: a bytecode loop that loads an opcode, jumps
/// through a **memory jump table** (`jr`), and runs a short handler
/// that `call`s a shared helper — the `perlbench`-like shape. The
/// dispatch `jr` has one PC but many targets, so the BTB mispredicts on
/// opcode changes; under the secure schemes the opcode load gates the
/// indirect's resolution, serializing dispatch.
pub fn interpreter(
    name: &str,
    iters: i64,
    opcodes: u64,
    table_words: u64,
    seed: u64,
) -> (Program, SparseMemory) {
    assert!((1..=8).contains(&opcodes));
    assert!(table_words.is_power_of_two());
    let mut b = ProgramBuilder::new(name);
    b.imm(r(1), REGION_A) // bytecode
        .imm(r(2), iters)
        .imm(r(3), 0) // acc
        .imm(r(6), REGION_B) // data table
        .imm(r(7), REGION_C) // jump table
        .imm(r(9), 0) // data cursor
        .label("top")
        .load(r(4), r(1), 0) // opcode
        .shli(r(5), r(4), 3)
        .add(r(5), r(5), r(7))
        .load(r(5), r(5), 0) // handler index from the jump table
        .jr(r(5));
    let mut handler_idx = Vec::new();
    for k in 0..opcodes {
        handler_idx.push(b.here());
        b.call("work").addi(r(3), r(3), k as i32 + 1).jmp("cont");
    }
    b.label("work")
        .add(r(11), r(6), r(9))
        .load(r(10), r(11), 0)
        .add(r(3), r(3), r(10))
        .addi(r(9), r(9), 8)
        .andi(r(9), r(9), (table_words as i32 * 8) - 1)
        .ret()
        .label("cont")
        .addi(r(1), r(1), 8)
        .subi(r(2), r(2), 1)
        .bne(r(2), Reg::ZERO, "top")
        .halt();
    let mut mem = SparseMemory::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Bytecode: short repeating phrases with occasional surprises, like
    // real interpreter traces.
    let mut phrase = Vec::new();
    for i in 0..iters {
        if phrase.is_empty() {
            let len = rng.gen_range(3..9);
            phrase = (0..len).map(|_| rng.gen_range(0..opcodes)).collect();
        }
        let op = phrase[(i as usize) % phrase.len()];
        if rng.gen_range(0..100) < 2 {
            phrase.clear(); // new phrase soon
        }
        mem.write_u64((REGION_A + i * 8) as u64, op);
    }
    for (k, &idx) in handler_idx.iter().enumerate() {
        mem.write_u64(REGION_C as u64 + 8 * k as u64, idx as u64);
    }
    for w in 0..table_words {
        mem.write_u64(REGION_B as u64 + 8 * w, rng.gen::<u16>() as u64);
    }
    (b.build().expect("interpreter kernel"), mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgl_isa::Emulator;

    fn runs_to_halt(p: &Program, mem: &SparseMemory) -> u64 {
        let mut emu = Emulator::new(p, mem.clone());
        let res = emu
            .run(50_000_000)
            .expect("kernel must be architecturally valid");
        assert!(res.halted, "kernel must halt");
        res.instructions
    }

    #[test]
    fn streaming_halts_and_scales() {
        let (p, mem) = streaming("s", 100, 8, 2, Some(1), 2);
        let insts = runs_to_halt(&p, &mem);
        assert!(insts > 700, "insts = {insts}");
        let (p2, mem2) = streaming("s", 200, 8, 2, Some(1), 2);
        assert!(runs_to_halt(&p2, &mem2) > insts);
    }

    #[test]
    fn indirect_stream_halts() {
        let (p, mem) = indirect_stream("i", 200, 64, Some(1), 2, 2, 1);
        runs_to_halt(&p, &mem);
    }

    #[test]
    fn pointer_chase_visits_whole_cycle() {
        let (p, mem) = pointer_chase("c", 300, 64, 0x140, 1, 2, 7);
        let mut emu = Emulator::new(&p, mem.clone());
        emu.run(50_000_000).unwrap();
        // The chase must not get stuck in a short cycle: count distinct
        // next-pointers reachable from the head.
        let mut seen = std::collections::HashSet::new();
        let mut cur = REGION_A as u64;
        for _ in 0..64 {
            if !seen.insert(cur) {
                break;
            }
            cur = mem.read_u64(cur);
        }
        assert_eq!(seen.len(), 64, "permutation must be one full cycle");
    }

    #[test]
    fn stride_runs_halts() {
        let (p, mem) = stride_runs("x", 300, 6, 4096, 3);
        runs_to_halt(&p, &mem);
    }

    #[test]
    fn compute_halts() {
        let (p, mem) = compute("e", 100, 6, 16, 9);
        runs_to_halt(&p, &mem);
    }

    #[test]
    fn stencil_halts() {
        let (p, mem) = stencil("g", 200, 2048, 2, 5);
        runs_to_halt(&p, &mem);
    }

    #[test]
    fn tree_walk_halts() {
        let (p, mem) = tree_walk("t", 50, 8, 2);
        runs_to_halt(&p, &mem);
    }

    #[test]
    fn chase_with_churn_halts() {
        let (p, mem) = chase_with_churn("o", 200, 64, 1024, 4);
        runs_to_halt(&p, &mem);
    }

    #[test]
    fn interpreter_halts_and_dispatches() {
        let (p, mem) = interpreter("i", 200, 4, 1024, 3);
        let insts = runs_to_halt(&p, &mem);
        assert!(insts > 2000, "insts = {insts}");
    }

    #[test]
    fn kernels_are_deterministic() {
        let (p1, m1) = indirect_stream("i", 50, 64, Some(1), 2, 2, 42);
        let (p2, m2) = indirect_stream("i", 50, 64, Some(1), 2, 2, 42);
        assert_eq!(p1, p2);
        assert_eq!(m1, m2);
        let (_, m3) = indirect_stream("i", 50, 64, Some(1), 2, 2, 43);
        assert_ne!(m1, m3, "different seeds, different images");
    }
}
