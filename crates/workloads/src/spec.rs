//! The named SPEC-like workload suite.

use crate::kernels;
use dgl_isa::{Program, SparseMemory};

/// How much work each workload does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~25k committed instructions per workload — CI and unit tests.
    Quick,
    /// ~150k committed instructions — the figures in EXPERIMENTS.md.
    Full,
    /// Explicit committed-instruction target.
    Custom(u64),
}

impl Scale {
    /// Approximate committed-instruction target.
    pub fn target_insts(self) -> u64 {
        match self {
            Scale::Quick => 25_000,
            Scale::Full => 150_000,
            Scale::Custom(n) => n,
        }
    }
}

/// A runnable benchmark: program + initial memory + run budget.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Suite name (`libquantum_like`, ...).
    pub name: &'static str,
    /// Which suite the imitated program belongs to.
    pub suite: &'static str,
    /// One-line behavioural description.
    pub description: &'static str,
    /// The program.
    pub program: Program,
    /// Initial memory image.
    pub memory: SparseMemory,
    /// Generous cycle budget for a run (any scheme).
    pub max_cycles: u64,
    /// `(start, bytes)` address ranges pre-warmed into the cache
    /// hierarchy before measurement — the stand-in for the paper's
    /// simpoint warm-up. Hot data structures (tables, pointer graphs)
    /// are warmed; streamed/cold regions are not.
    pub warm_ranges: Vec<(u64, u64)>,
}

fn iters(scale: Scale, insts_per_iter: u64) -> i64 {
    (scale.target_insts() / insts_per_iter).max(64) as i64
}

fn wl(
    name: &'static str,
    suite: &'static str,
    description: &'static str,
    (program, memory): (Program, SparseMemory),
    scale: Scale,
) -> Workload {
    Workload {
        name,
        suite,
        description,
        program,
        memory,
        // DoM on a DRAM-bound chase can exceed CPI 30; stay generous.
        max_cycles: scale.target_insts() * 60 + 200_000,
        warm_ranges: Vec::new(),
    }
}

fn warmed(mut w: Workload, ranges: Vec<(u64, u64)>) -> Workload {
    w.warm_ranges = ranges;
    w
}

/// Chase-lane node ranges for warming (pointer structure hot, payloads
/// cold).
fn chase_warm(nodes: u64, node_stride: u64, lanes: u8) -> Vec<(u64, u64)> {
    let per_lane_bytes = (nodes / lanes as u64) * node_stride;
    (0..lanes)
        .map(|l| (kernels::chase_lane_region(l) as u64, per_lane_bytes))
        .collect()
}

/// Builds the full suite at the given scale.
///
/// The names follow the paper's Figure 6 benchmark list; each workload
/// is a synthetic kernel reproducing that benchmark's dominant
/// behaviour class (see crate docs and DESIGN.md §5). Hot data
/// structures (tables, pointer graphs, grids, and the index streams the
/// kernels walk) are declared in `warm_ranges`, standing in for the
/// paper's simpoint warm-up; genuinely streaming regions (libquantum's
/// arrays, chase payload mirrors) stay cold.
pub fn suite(scale: Scale) -> Vec<Workload> {
    let s = scale;
    let ra = kernels::REGION_A as u64;
    let rb = kernels::REGION_B as u64;
    let rc = kernels::REGION_C as u64;
    // Index/offset stream footprint of a kernel with `ipi` insts/iter.
    let stream_bytes = |ipi: u64| iters(s, ipi) as u64 * 8;
    vec![
        // ---- SPEC CPU2006-like ----
        warmed(
            wl(
                "bzip2_like",
                "2006",
                "indirect streaming over an L2-resident table; predictable dependent loads",
                kernels::indirect_stream(
                    "bzip2_like",
                    iters(s, 38),
                    32 * 1024,
                    Some(1),
                    4,
                    4,
                    0xB21,
                ),
                s,
            ),
            vec![(rb, 32 * 1024 * 8), (ra, stream_bytes(12))],
        ),
        warmed(
            wl(
                "gcc_like",
                "2006",
                "indirect streaming over an L3-resident table; predictable dependent loads",
                kernels::indirect_stream(
                    "gcc_like",
                    iters(s, 38),
                    512 * 1024,
                    Some(1),
                    4,
                    4,
                    0x6CC,
                ),
                s,
            ),
            vec![(rb, 512 * 1024 * 8), (ra, stream_bytes(12))],
        ),
        warmed(
            wl(
                "mcf_like",
                "2006",
                "pointer chase (hot graph, cold payloads) with data-dependent branches",
                kernels::pointer_chase("mcf_like", iters(s, 33), 24_000, 0x140, 2, 6, 0x3CF),
                s,
            ),
            {
                let mut w = chase_warm(24_000, 0x140, 2);
                w.push((rb, stream_bytes(34)));
                w
            },
        ),
        wl(
            "gromacs_like",
            "2006",
            "compute-bound with a small hot table",
            kernels::compute("gromacs_like", iters(s, 41), 6, 512, 0x6A0),
            s,
        ),
        warmed(
            wl(
                "GemsFDTD_like",
                "2006",
                "multi-stream stencil over an L2-resident grid; DoM-antagonistic",
                kernels::stencil("GemsFDTD_like", iters(s, 28), 100_000, 4, 0x6E2),
                s,
            ),
            vec![(ra, 100_000 * 8), (rb, 100_000 * 8), (rc, 100_000 * 8)],
        ),
        warmed(
            wl(
                "hmmer_like",
                "2006",
                "dense strided loads over an L1/L2-resident table; high coverage",
                kernels::indirect_stream_wrapped(
                    "hmmer_like",
                    iters(s, 41),
                    2 * 1024,
                    Some(1),
                    6,
                    1,
                    Some(16 * 1024),
                    0x423,
                ),
                s,
            ),
            vec![(rb, 2 * 1024 * 8), (ra, 16 * 1024)],
        ),
        wl(
            "sjeng_like",
            "2006",
            "branchy compute with a small table",
            kernels::compute("sjeng_like", iters(s, 29), 3, 4 * 1024, 0x51E),
            s,
        ),
        wl(
            "libquantum_like",
            "2006",
            "pure DRAM streaming; the standout address-prediction case",
            kernels::streaming("libquantum_like", iters(s, 22), 8, 2, Some(1), 3),
            s,
        ),
        warmed(
            wl(
                "omnetpp_like",
                "2006",
                "pointer chase with allocation churn; doppelganger pollution hazard",
                kernels::chase_with_churn("omnetpp_like", iters(s, 14), 24_000, 48 * 1024, 0x0E7),
                s,
            ),
            {
                let mut w = chase_warm(24_000, 0x140, 1);
                w.push((rc, 48 * 1024 * 8));
                w
            },
        ),
        warmed(
            wl(
                "astar_like",
                "2006",
                "tree descents with data-dependent direction; branch-bound",
                kernels::tree_walk("astar_like", iters(s, 190), 15, 0xA57),
                s,
            ),
            vec![(ra, ((1u64 << 16) - 1) * 32), (rc, 16 * 1024)],
        ),
        warmed(
            wl(
                "xalancbmk_like",
                "2006",
                "stride runs with frequent breaks; low predictor accuracy",
                kernels::stride_runs("xalancbmk_like", iters(s, 8), 6, 512 * 1024, 0x8A1),
                s,
            ),
            vec![(rb, 512 * 1024 * 8), (ra, stream_bytes(8))],
        ),
        // ---- SPEC CPU2017-like ----
        warmed(
            wl(
                "gcc_s_like",
                "2017",
                "indirect streaming with dependent branches over an L3 table",
                kernels::indirect_stream(
                    "gcc_s_like",
                    iters(s, 36),
                    256 * 1024,
                    Some(1),
                    3,
                    5,
                    0x6CD,
                ),
                s,
            ),
            vec![(rb, 256 * 1024 * 8), (ra, stream_bytes(12))],
        ),
        warmed(
            wl(
                "mcf_s_like",
                "2017",
                "denser pointer chase (hot graph, cold payloads)",
                kernels::pointer_chase("mcf_s_like", iters(s, 36), 36_000, 0xC0, 3, 5, 0x3D0),
                s,
            ),
            {
                let mut w = chase_warm(36_000, 0xC0, 3);
                w.push((rb, stream_bytes(34)));
                w
            },
        ),
        warmed(
            wl(
                "omnetpp_s_like",
                "2017",
                "chase plus heavier churn; slight AP penalty expected",
                kernels::chase_with_churn("omnetpp_s_like", iters(s, 14), 32_000, 96 * 1024, 0x0E8),
                s,
            ),
            {
                let mut w = chase_warm(32_000, 0x140, 1);
                w.push((rc, 96 * 1024 * 8));
                w
            },
        ),
        warmed(
            wl(
                "xalancbmk_s_like",
                "2017",
                "shorter stride runs; lowest predictor accuracy, floods L1 under AP",
                kernels::stride_runs("xalancbmk_s_like", iters(s, 8), 4, 1024 * 1024, 0x8A2),
                s,
            ),
            vec![(rb, 1024 * 1024 * 8), (ra, stream_bytes(8))],
        ),
        wl(
            "exchange2_s_like",
            "2017",
            "almost pure integer compute; tiny memory footprint",
            kernels::compute("exchange2_s_like", iters(s, 49), 8, 128, 0xE2C),
            s,
        ),
        warmed(
            wl(
                "deepsjeng_s_like",
                "2017",
                "tree descents over an L2-resident tree",
                kernels::tree_walk("deepsjeng_s_like", iters(s, 140), 11, 0xD5E),
                s,
            ),
            vec![(ra, ((1u64 << 12) - 1) * 32), (rc, 16 * 1024)],
        ),
        wl(
            "lbm_s_like",
            "2017",
            "wide-stride DRAM streaming with more compute per element",
            kernels::streaming("lbm_s_like", iters(s, 23), 16, 4, None, 3),
            s,
        ),
        warmed(
            wl(
                "wrf_s_like",
                "2017",
                "stencil over a small L2-resident grid",
                kernels::stencil("wrf_s_like", iters(s, 28), 24_000, 4, 0x36F),
                s,
            ),
            vec![(ra, 24_000 * 8), (rb, 24_000 * 8), (rc, 24_000 * 8)],
        ),
        warmed(
            wl(
                "perlbench_like",
                "2006",
                "interpreter dispatch: memory jump table, indirect jumps, calls",
                kernels::interpreter("perlbench_like", iters(s, 17), 6, 8 * 1024, 0x9E1),
                s,
            ),
            vec![(ra, stream_bytes(17)), (rb, 8 * 1024 * 8), (rc, 64)],
        ),
        wl(
            "milc_like",
            "2006",
            "wide-stride DRAM streaming with light compute (lattice QCD sweep)",
            kernels::streaming("milc_like", iters(s, 20), 24, 2, Some(1), 2),
            s,
        ),
        warmed(
            wl(
                "soplex_like",
                "2006",
                "indirect streaming over an L3-resident matrix with dependent branches",
                kernels::indirect_stream(
                    "soplex_like",
                    iters(s, 37),
                    384 * 1024,
                    Some(1),
                    3,
                    6,
                    0x50F,
                ),
                s,
            ),
            vec![(rb, 384 * 1024 * 8), (ra, stream_bytes(37))],
        ),
        wl(
            "povray_like",
            "2006",
            "deep compute chains with a tiny hot table (ray bookkeeping)",
            kernels::compute("povray_like", iters(s, 53), 9, 256, 0x907),
            s,
        ),
        warmed(
            wl(
                "cactuBSSN_s_like",
                "2017",
                "stencil over a large L2/L3-resident grid",
                kernels::stencil("cactuBSSN_s_like", iters(s, 28), 200_000, 4, 0xCAC),
                s,
            ),
            vec![(ra, 200_000 * 8), (rb, 200_000 * 8), (rc, 200_000 * 8)],
        ),
        warmed(
            wl(
                "leela_s_like",
                "2017",
                "tree descents with a larger branching payload (MCTS playouts)",
                kernels::tree_walk("leela_s_like", iters(s, 160), 13, 0x1EE),
                s,
            ),
            vec![(ra, ((1u64 << 14) - 1) * 32), (rc, 16 * 1024)],
        ),
        warmed(
            wl(
                "nab_s_like",
                "2017",
                "short stride runs over an L2-resident table (neighbour lists)",
                kernels::stride_runs("nab_s_like", iters(s, 8), 8, 192 * 1024, 0x0AB),
                s,
            ),
            vec![(rb, 192 * 1024 * 8), (ra, stream_bytes(8))],
        ),
        warmed(
            wl(
                "x264_s_like",
                "2017",
                "indirect streaming over an L1/L2-resident block table",
                kernels::indirect_stream(
                    "x264_s_like",
                    iters(s, 44),
                    8 * 1024,
                    Some(1),
                    4,
                    6,
                    0x264,
                ),
                s,
            ),
            vec![(rb, 8 * 1024 * 8), (ra, stream_bytes(12))],
        ),
    ]
}

/// Builds one workload by suite name, or `None` for unknown names.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    suite(scale).into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgl_isa::Emulator;

    #[test]
    fn suite_has_twenty_named_workloads() {
        let all = suite(Scale::Quick);
        assert_eq!(all.len(), 27);
        let names: std::collections::HashSet<_> = all.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 27, "names must be unique");
        assert!(names.contains("libquantum_like"));
        assert!(names.contains("mcf_like"));
        assert!(names.contains("xalancbmk_s_like"));
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("mcf_like", Scale::Quick).is_some());
        assert!(by_name("doom_like", Scale::Quick).is_none());
    }

    #[test]
    fn every_workload_halts_near_its_instruction_target() {
        for w in suite(Scale::Quick) {
            let mut emu = Emulator::new(&w.program, w.memory.clone());
            let res = emu
                .run(5_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(res.halted, "{} did not halt", w.name);
            let target = Scale::Quick.target_insts();
            assert!(
                res.instructions >= target / 3 && res.instructions <= target * 3,
                "{}: {} instructions vs target {}",
                w.name,
                res.instructions,
                target
            );
        }
    }

    #[test]
    fn scales_order_instruction_counts() {
        let q = by_name("libquantum_like", Scale::Quick).unwrap();
        let f = by_name("libquantum_like", Scale::Full).unwrap();
        let mut eq = Emulator::new(&q.program, q.memory.clone());
        let mut ef = Emulator::new(&f.program, f.memory.clone());
        let iq = eq.run(50_000_000).unwrap().instructions;
        let iff = ef.run(50_000_000).unwrap().instructions;
        assert!(iff > 3 * iq, "full ({iff}) should dwarf quick ({iq})");
    }

    #[test]
    fn custom_scale_is_respected() {
        let w = by_name("hmmer_like", Scale::Custom(60_000)).unwrap();
        let mut emu = Emulator::new(&w.program, w.memory.clone());
        let n = emu.run(50_000_000).unwrap().instructions;
        assert!((30_000..180_000).contains(&n), "n = {n}");
    }
}
