//! The named SPEC-like workload suite.
//!
//! The suite is declared as a [`catalog`] of [`WorkloadSpec`] entries —
//! name, suite, description, and a build function. Listing and lookup
//! are free; programs and memory images are only generated when a
//! caller asks a spec to [`WorkloadSpec::build`]. `dgl-sim`'s
//! evaluation matrix builds each workload once per row and shares it
//! across every configuration of that row.

use crate::kernels;
use dgl_isa::{Program, SparseMemory};

/// How much work each workload does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~25k committed instructions per workload — CI and unit tests.
    Quick,
    /// ~150k committed instructions — the figures in EXPERIMENTS.md.
    Full,
    /// Explicit committed-instruction target.
    Custom(u64),
}

impl Scale {
    /// Approximate committed-instruction target.
    pub fn target_insts(self) -> u64 {
        match self {
            Scale::Quick => 25_000,
            Scale::Full => 150_000,
            Scale::Custom(n) => n,
        }
    }
}

/// A runnable benchmark: program + initial memory + run budget.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Suite name (`libquantum_like`, ...).
    pub name: &'static str,
    /// Which suite the imitated program belongs to.
    pub suite: &'static str,
    /// One-line behavioural description.
    pub description: &'static str,
    /// The program.
    pub program: Program,
    /// Initial memory image.
    pub memory: SparseMemory,
    /// Generous cycle budget for a run (any scheme).
    pub max_cycles: u64,
    /// `(start, bytes)` address ranges pre-warmed into the cache
    /// hierarchy before measurement — the stand-in for the paper's
    /// simpoint warm-up. Hot data structures (tables, pointer graphs)
    /// are warmed; streamed/cold regions are not.
    pub warm_ranges: Vec<(u64, u64)>,
}

/// What a catalog builder produces: `(program + memory, warm ranges)`.
type BuildOutput = ((Program, SparseMemory), Vec<(u64, u64)>);

/// A catalog entry: workload metadata plus a deferred builder.
///
/// Holding a spec costs nothing; [`build`](Self::build) generates the
/// program and memory image at the requested scale.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Suite name (`libquantum_like`, ...).
    pub name: &'static str,
    /// Which suite the imitated program belongs to.
    pub suite: &'static str,
    /// One-line behavioural description.
    pub description: &'static str,
    /// Generates `(program + memory, warm ranges)` at a scale.
    build: fn(Scale) -> BuildOutput,
}

impl WorkloadSpec {
    /// Builds the runnable workload at `scale`.
    pub fn build(&self, scale: Scale) -> Workload {
        let ((program, memory), warm_ranges) = (self.build)(scale);
        Workload {
            name: self.name,
            suite: self.suite,
            description: self.description,
            program,
            memory,
            // DoM on a DRAM-bound chase can exceed CPI 30; stay generous.
            max_cycles: scale.target_insts() * 60 + 200_000,
            warm_ranges,
        }
    }
}

fn iters(scale: Scale, insts_per_iter: u64) -> i64 {
    (scale.target_insts() / insts_per_iter).max(64) as i64
}

/// Index/offset stream footprint of a kernel with `ipi` insts/iter.
fn stream_bytes(s: Scale, ipi: u64) -> u64 {
    iters(s, ipi) as u64 * 8
}

/// Chase-lane node ranges for warming (pointer structure hot, payloads
/// cold).
fn chase_warm(nodes: u64, node_stride: u64, lanes: u8) -> Vec<(u64, u64)> {
    let per_lane_bytes = (nodes / lanes as u64) * node_stride;
    (0..lanes)
        .map(|l| (kernels::chase_lane_region(l) as u64, per_lane_bytes))
        .collect()
}

const RA: u64 = kernels::REGION_A as u64;
const RB: u64 = kernels::REGION_B as u64;
const RC: u64 = kernels::REGION_C as u64;

/// The full suite as metadata.
///
/// The names follow the paper's Figure 6 benchmark list; each workload
/// is a synthetic kernel reproducing that benchmark's dominant
/// behaviour class (see crate docs and DESIGN.md §5). Hot data
/// structures (tables, pointer graphs, grids, and the index streams the
/// kernels walk) are declared in the warm ranges, standing in for the
/// paper's simpoint warm-up; genuinely streaming regions (libquantum's
/// arrays, chase payload mirrors) stay cold.
pub fn catalog() -> &'static [WorkloadSpec] {
    &CATALOG
}

static CATALOG: [WorkloadSpec; 27] = [
    // ---- SPEC CPU2006-like ----
    WorkloadSpec {
        name: "bzip2_like",
        suite: "2006",
        description: "indirect streaming over an L2-resident table; predictable dependent loads",
        build: |s| {
            (
                kernels::indirect_stream(
                    "bzip2_like",
                    iters(s, 38),
                    32 * 1024,
                    Some(1),
                    4,
                    4,
                    0xB21,
                ),
                vec![(RB, 32 * 1024 * 8), (RA, stream_bytes(s, 12))],
            )
        },
    },
    WorkloadSpec {
        name: "gcc_like",
        suite: "2006",
        description: "indirect streaming over an L3-resident table; predictable dependent loads",
        build: |s| {
            (
                kernels::indirect_stream(
                    "gcc_like",
                    iters(s, 38),
                    512 * 1024,
                    Some(1),
                    4,
                    4,
                    0x6CC,
                ),
                vec![(RB, 512 * 1024 * 8), (RA, stream_bytes(s, 12))],
            )
        },
    },
    WorkloadSpec {
        name: "mcf_like",
        suite: "2006",
        description: "pointer chase (hot graph, cold payloads) with data-dependent branches",
        build: |s| {
            (
                kernels::pointer_chase("mcf_like", iters(s, 33), 24_000, 0x140, 2, 6, 0x3CF),
                {
                    let mut w = chase_warm(24_000, 0x140, 2);
                    w.push((RB, stream_bytes(s, 34)));
                    w
                },
            )
        },
    },
    WorkloadSpec {
        name: "gromacs_like",
        suite: "2006",
        description: "compute-bound with a small hot table",
        build: |s| {
            (
                kernels::compute("gromacs_like", iters(s, 41), 6, 512, 0x6A0),
                Vec::new(),
            )
        },
    },
    WorkloadSpec {
        name: "GemsFDTD_like",
        suite: "2006",
        description: "multi-stream stencil over an L2-resident grid; DoM-antagonistic",
        build: |s| {
            (
                kernels::stencil("GemsFDTD_like", iters(s, 28), 100_000, 4, 0x6E2),
                vec![(RA, 100_000 * 8), (RB, 100_000 * 8), (RC, 100_000 * 8)],
            )
        },
    },
    WorkloadSpec {
        name: "hmmer_like",
        suite: "2006",
        description: "dense strided loads over an L1/L2-resident table; high coverage",
        build: |s| {
            (
                kernels::indirect_stream_wrapped(
                    "hmmer_like",
                    iters(s, 41),
                    2 * 1024,
                    Some(1),
                    6,
                    1,
                    Some(16 * 1024),
                    0x423,
                ),
                vec![(RB, 2 * 1024 * 8), (RA, 16 * 1024)],
            )
        },
    },
    WorkloadSpec {
        name: "sjeng_like",
        suite: "2006",
        description: "branchy compute with a small table",
        build: |s| {
            (
                kernels::compute("sjeng_like", iters(s, 29), 3, 4 * 1024, 0x51E),
                Vec::new(),
            )
        },
    },
    WorkloadSpec {
        name: "libquantum_like",
        suite: "2006",
        description: "pure DRAM streaming; the standout address-prediction case",
        build: |s| {
            (
                kernels::streaming("libquantum_like", iters(s, 22), 8, 2, Some(1), 3),
                Vec::new(),
            )
        },
    },
    WorkloadSpec {
        name: "omnetpp_like",
        suite: "2006",
        description: "pointer chase with allocation churn; doppelganger pollution hazard",
        build: |s| {
            (
                kernels::chase_with_churn("omnetpp_like", iters(s, 14), 24_000, 48 * 1024, 0x0E7),
                {
                    let mut w = chase_warm(24_000, 0x140, 1);
                    w.push((RC, 48 * 1024 * 8));
                    w
                },
            )
        },
    },
    WorkloadSpec {
        name: "astar_like",
        suite: "2006",
        description: "tree descents with data-dependent direction; branch-bound",
        build: |s| {
            (
                kernels::tree_walk("astar_like", iters(s, 190), 15, 0xA57),
                vec![(RA, ((1u64 << 16) - 1) * 32), (RC, 16 * 1024)],
            )
        },
    },
    WorkloadSpec {
        name: "xalancbmk_like",
        suite: "2006",
        description: "stride runs with frequent breaks; low predictor accuracy",
        build: |s| {
            (
                kernels::stride_runs("xalancbmk_like", iters(s, 8), 6, 512 * 1024, 0x8A1),
                vec![(RB, 512 * 1024 * 8), (RA, stream_bytes(s, 8))],
            )
        },
    },
    // ---- SPEC CPU2017-like ----
    WorkloadSpec {
        name: "gcc_s_like",
        suite: "2017",
        description: "indirect streaming with dependent branches over an L3 table",
        build: |s| {
            (
                kernels::indirect_stream(
                    "gcc_s_like",
                    iters(s, 36),
                    256 * 1024,
                    Some(1),
                    3,
                    5,
                    0x6CD,
                ),
                vec![(RB, 256 * 1024 * 8), (RA, stream_bytes(s, 12))],
            )
        },
    },
    WorkloadSpec {
        name: "mcf_s_like",
        suite: "2017",
        description: "denser pointer chase (hot graph, cold payloads)",
        build: |s| {
            (
                kernels::pointer_chase("mcf_s_like", iters(s, 36), 36_000, 0xC0, 3, 5, 0x3D0),
                {
                    let mut w = chase_warm(36_000, 0xC0, 3);
                    w.push((RB, stream_bytes(s, 34)));
                    w
                },
            )
        },
    },
    WorkloadSpec {
        name: "omnetpp_s_like",
        suite: "2017",
        description: "chase plus heavier churn; slight AP penalty expected",
        build: |s| {
            (
                kernels::chase_with_churn("omnetpp_s_like", iters(s, 14), 32_000, 96 * 1024, 0x0E8),
                {
                    let mut w = chase_warm(32_000, 0x140, 1);
                    w.push((RC, 96 * 1024 * 8));
                    w
                },
            )
        },
    },
    WorkloadSpec {
        name: "xalancbmk_s_like",
        suite: "2017",
        description: "shorter stride runs; lowest predictor accuracy, floods L1 under AP",
        build: |s| {
            (
                kernels::stride_runs("xalancbmk_s_like", iters(s, 8), 4, 1024 * 1024, 0x8A2),
                vec![(RB, 1024 * 1024 * 8), (RA, stream_bytes(s, 8))],
            )
        },
    },
    WorkloadSpec {
        name: "exchange2_s_like",
        suite: "2017",
        description: "almost pure integer compute; tiny memory footprint",
        build: |s| {
            (
                kernels::compute("exchange2_s_like", iters(s, 49), 8, 128, 0xE2C),
                Vec::new(),
            )
        },
    },
    WorkloadSpec {
        name: "deepsjeng_s_like",
        suite: "2017",
        description: "tree descents over an L2-resident tree",
        build: |s| {
            (
                kernels::tree_walk("deepsjeng_s_like", iters(s, 140), 11, 0xD5E),
                vec![(RA, ((1u64 << 12) - 1) * 32), (RC, 16 * 1024)],
            )
        },
    },
    WorkloadSpec {
        name: "lbm_s_like",
        suite: "2017",
        description: "wide-stride DRAM streaming with more compute per element",
        build: |s| {
            (
                kernels::streaming("lbm_s_like", iters(s, 23), 16, 4, None, 3),
                Vec::new(),
            )
        },
    },
    WorkloadSpec {
        name: "wrf_s_like",
        suite: "2017",
        description: "stencil over a small L2-resident grid",
        build: |s| {
            (
                kernels::stencil("wrf_s_like", iters(s, 28), 24_000, 4, 0x36F),
                vec![(RA, 24_000 * 8), (RB, 24_000 * 8), (RC, 24_000 * 8)],
            )
        },
    },
    WorkloadSpec {
        name: "perlbench_like",
        suite: "2006",
        description: "interpreter dispatch: memory jump table, indirect jumps, calls",
        build: |s| {
            (
                kernels::interpreter("perlbench_like", iters(s, 17), 6, 8 * 1024, 0x9E1),
                vec![(RA, stream_bytes(s, 17)), (RB, 8 * 1024 * 8), (RC, 64)],
            )
        },
    },
    WorkloadSpec {
        name: "milc_like",
        suite: "2006",
        description: "wide-stride DRAM streaming with light compute (lattice QCD sweep)",
        build: |s| {
            (
                kernels::streaming("milc_like", iters(s, 20), 24, 2, Some(1), 2),
                Vec::new(),
            )
        },
    },
    WorkloadSpec {
        name: "soplex_like",
        suite: "2006",
        description: "indirect streaming over an L3-resident matrix with dependent branches",
        build: |s| {
            (
                kernels::indirect_stream(
                    "soplex_like",
                    iters(s, 37),
                    384 * 1024,
                    Some(1),
                    3,
                    6,
                    0x50F,
                ),
                vec![(RB, 384 * 1024 * 8), (RA, stream_bytes(s, 37))],
            )
        },
    },
    WorkloadSpec {
        name: "povray_like",
        suite: "2006",
        description: "deep compute chains with a tiny hot table (ray bookkeeping)",
        build: |s| {
            (
                kernels::compute("povray_like", iters(s, 53), 9, 256, 0x907),
                Vec::new(),
            )
        },
    },
    WorkloadSpec {
        name: "cactuBSSN_s_like",
        suite: "2017",
        description: "stencil over a large L2/L3-resident grid",
        build: |s| {
            (
                kernels::stencil("cactuBSSN_s_like", iters(s, 28), 200_000, 4, 0xCAC),
                vec![(RA, 200_000 * 8), (RB, 200_000 * 8), (RC, 200_000 * 8)],
            )
        },
    },
    WorkloadSpec {
        name: "leela_s_like",
        suite: "2017",
        description: "tree descents with a larger branching payload (MCTS playouts)",
        build: |s| {
            (
                kernels::tree_walk("leela_s_like", iters(s, 160), 13, 0x1EE),
                vec![(RA, ((1u64 << 14) - 1) * 32), (RC, 16 * 1024)],
            )
        },
    },
    WorkloadSpec {
        name: "nab_s_like",
        suite: "2017",
        description: "short stride runs over an L2-resident table (neighbour lists)",
        build: |s| {
            (
                kernels::stride_runs("nab_s_like", iters(s, 8), 8, 192 * 1024, 0x0AB),
                vec![(RB, 192 * 1024 * 8), (RA, stream_bytes(s, 8))],
            )
        },
    },
    WorkloadSpec {
        name: "x264_s_like",
        suite: "2017",
        description: "indirect streaming over an L1/L2-resident block table",
        build: |s| {
            (
                kernels::indirect_stream(
                    "x264_s_like",
                    iters(s, 44),
                    8 * 1024,
                    Some(1),
                    4,
                    6,
                    0x264,
                ),
                vec![(RB, 8 * 1024 * 8), (RA, stream_bytes(s, 12))],
            )
        },
    },
];

/// Builds the full suite at the given scale. See [`catalog`] for the
/// cheap, metadata-only view.
pub fn suite(scale: Scale) -> Vec<Workload> {
    catalog().iter().map(|spec| spec.build(scale)).collect()
}

/// Builds one workload by suite name, or `None` for unknown names.
/// Only the named workload is generated.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    catalog()
        .iter()
        .find(|spec| spec.name == name)
        .map(|spec| spec.build(scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgl_isa::Emulator;

    #[test]
    fn suite_has_twenty_named_workloads() {
        let all = suite(Scale::Quick);
        assert_eq!(all.len(), 27);
        let names: std::collections::HashSet<_> = all.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 27, "names must be unique");
        assert!(names.contains("libquantum_like"));
        assert!(names.contains("mcf_like"));
        assert!(names.contains("xalancbmk_s_like"));
    }

    #[test]
    fn catalog_metadata_matches_built_workloads() {
        for spec in catalog() {
            let w = spec.build(Scale::Quick);
            assert_eq!(w.name, spec.name);
            assert_eq!(w.suite, spec.suite);
            assert_eq!(w.description, spec.description);
            assert!(!w.program.is_empty(), "{}: empty program", spec.name);
        }
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("mcf_like", Scale::Quick).is_some());
        assert!(by_name("doom_like", Scale::Quick).is_none());
    }

    #[test]
    fn every_workload_halts_near_its_instruction_target() {
        for w in suite(Scale::Quick) {
            let mut emu = Emulator::new(&w.program, w.memory.clone());
            let res = emu
                .run(5_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(res.halted, "{} did not halt", w.name);
            let target = Scale::Quick.target_insts();
            assert!(
                res.instructions >= target / 3 && res.instructions <= target * 3,
                "{}: {} instructions vs target {}",
                w.name,
                res.instructions,
                target
            );
        }
    }

    #[test]
    fn scales_order_instruction_counts() {
        let q = by_name("libquantum_like", Scale::Quick).unwrap();
        let f = by_name("libquantum_like", Scale::Full).unwrap();
        let mut eq = Emulator::new(&q.program, q.memory.clone());
        let mut ef = Emulator::new(&f.program, f.memory.clone());
        let iq = eq.run(50_000_000).unwrap().instructions;
        let iff = ef.run(50_000_000).unwrap().instructions;
        assert!(iff > 3 * iq, "full ({iff}) should dwarf quick ({iq})");
    }

    #[test]
    fn custom_scale_is_respected() {
        let w = by_name("hmmer_like", Scale::Custom(60_000)).unwrap();
        let mut emu = Emulator::new(&w.program, w.memory.clone());
        let n = emu.run(50_000_000).unwrap().instructions;
        assert!((30_000..180_000).contains(&n), "n = {n}");
    }
}
