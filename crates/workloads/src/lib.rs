//! Synthetic SPEC-like workloads for the Doppelganger Loads evaluation.
//!
//! The paper evaluates on SPEC CPU2006/2017 simpoints, which cannot be
//! redistributed. This crate substitutes a suite of ~20 deterministic
//! kernels, each named after the SPEC program whose *dominant
//! memory/control behaviour* it imitates (`libquantum_like`,
//! `mcf_like`, ...). The per-benchmark effects the paper reports are
//! driven by first-order properties the generators control directly:
//!
//! * stride predictability of load addresses (coverage/accuracy,
//!   Figure 7),
//! * which cache level the working set lives in (DoM's pain, MLP loss),
//! * dependent-load depth (NDA-P/STT's pain),
//! * branch behaviour (shadow lifetimes and squashes).
//!
//! Every workload is reproducible: memory images are generated from
//! fixed seeds, programs terminate with `halt`, and the golden-model
//! emulator validates each one in the test suite.
//!
//! # Examples
//!
//! ```
//! use dgl_workloads::{suite, Scale};
//!
//! let all = suite(Scale::Quick);
//! assert!(all.len() >= 18);
//! let lib = all.iter().find(|w| w.name == "libquantum_like").unwrap();
//! assert!(lib.program.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod spec;

pub use spec::{by_name, catalog, suite, Scale, Workload, WorkloadSpec};
