//! The architectural golden model.
//!
//! Every timing configuration of the out-of-order core — unsafe baseline,
//! NDA-P, STT, DoM, each with or without doppelganger loads — must produce
//! exactly the architectural state this in-order emulator produces.
//! Integration and property tests enforce that invariant.

use crate::inst::{Op, Width};
use crate::memory::SparseMemory;
use crate::program::Program;
use crate::reg::{Reg, NUM_REGS};
use std::fmt;

/// Error produced while emulating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// An indirect jump targeted an instruction index outside the program.
    BadIndirectTarget {
        /// PC of the offending jump.
        pc: usize,
        /// The invalid target index.
        target: u64,
    },
    /// Execution ran off the end of the program without a `halt`.
    RanOffEnd {
        /// First out-of-range pc reached.
        pc: usize,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::BadIndirectTarget { pc, target } => {
                write!(f, "indirect jump at {pc} to invalid target {target}")
            }
            EmuError::RanOffEnd { pc } => write!(f, "execution ran off program end at pc {pc}"),
        }
    }
}

impl std::error::Error for EmuError {}

/// An architectural event retired by [`Emulator::step_observed`].
///
/// This is the minimal stream a functional-warming model needs: the
/// effective address of every memory access and the resolved outcome
/// of every instruction the detailed pipeline treats as a branch
/// (conditional branches plus the indirect `jumpreg`/`ret` forms).
/// Direct `jump`/`call` instructions are not reported — the pipeline's
/// front end resolves them at decode and never consults the branch
/// predictor for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchEvent {
    /// A load retired: `pc` is the instruction's program index, `addr`
    /// the effective byte address it read.
    Load {
        /// Program index of the load.
        pc: usize,
        /// Effective byte address read.
        addr: u64,
    },
    /// A store retired.
    Store {
        /// Program index of the store.
        pc: usize,
        /// Effective byte address written.
        addr: u64,
    },
    /// A predicted control-flow instruction retired. Conditional
    /// branches report their evaluated direction; indirect jumps
    /// report `taken: true` with the resolved target.
    Branch {
        /// Program index of the branch.
        pc: usize,
        /// Whether the branch redirected the PC.
        taken: bool,
        /// The program index executed next.
        next: usize,
    },
}

/// Result of [`Emulator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Instructions retired (including the final `halt` if reached).
    pub instructions: u64,
    /// Whether the program reached `halt` within the step budget.
    pub halted: bool,
}

/// A snapshot of architectural state at a retired-instruction boundary.
///
/// This is the hand-off format of sampled simulation: the functional
/// emulator fast-forwards to a window start, captures a `Checkpoint`,
/// and the detailed out-of-order core resumes from it. Because the
/// emulator is the golden model, a checkpoint is *exactly* the
/// architectural state every timing configuration must agree on —
/// registers, next PC, and the memory image — plus enough bookkeeping
/// (`retired`, `halted`) to place the snapshot within the program.
///
/// # Examples
///
/// ```
/// use dgl_isa::{Emulator, ProgramBuilder, Reg, SparseMemory};
///
/// let r1 = Reg::new(1);
/// let mut b = ProgramBuilder::new("p");
/// b.imm(r1, 1).addi(r1, r1, 1).addi(r1, r1, 1).halt();
/// let p = b.build()?;
/// let mut emu = Emulator::new(&p, SparseMemory::new());
/// emu.run(2)?;
/// let cp = emu.checkpoint();
/// assert_eq!(cp.retired, 2);
/// // Resuming from the checkpoint reaches the same final state.
/// let mut resumed = Emulator::from_checkpoint(&p, cp);
/// resumed.run(100)?;
/// assert_eq!(resumed.reg(r1), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Architectural register values (`r0` is always 0).
    pub regs: [i64; NUM_REGS],
    /// The next instruction to execute.
    pub pc: usize,
    /// The memory image at the snapshot point.
    pub memory: SparseMemory,
    /// Instructions retired before the snapshot.
    pub retired: u64,
    /// Whether `halt` had already retired.
    pub halted: bool,
}

impl Checkpoint {
    /// Appends a canonical flat-word dump of the snapshot to `out`:
    /// every register (as raw `u64` bits), the PC, the retired count,
    /// the halted flag, then the memory image via
    /// [`SparseMemory::dump_state`].
    ///
    /// This is the serialization hand-off for checkpoint stores: the
    /// word stream is deterministic, [`restore_state`] of a dump
    /// compares equal (`==`) to the original, and a fingerprint over
    /// the words identifies the architectural state exactly.
    ///
    /// [`restore_state`]: Self::restore_state
    pub fn dump_state(&self, out: &mut Vec<u64>) {
        for &r in &self.regs {
            out.push(r as u64);
        }
        out.push(self.pc as u64);
        out.push(self.retired);
        out.push(u64::from(self.halted));
        self.memory.dump_state(out);
    }

    /// Rebuilds a checkpoint from a [`dump_state`](Self::dump_state)
    /// word stream, consuming exactly the words the dump produced.
    /// Returns `None` on a truncated or malformed stream — corrupted
    /// serialized checkpoints must surface as a clean miss, not a
    /// panic.
    pub fn restore_state(words: &mut &[u64]) -> Option<Checkpoint> {
        if words.len() < NUM_REGS + 3 {
            return None;
        }
        let mut regs = [0i64; NUM_REGS];
        for (slot, &w) in regs.iter_mut().zip(words.iter()) {
            *slot = w as i64;
        }
        if regs[0] != 0 {
            return None; // r0 is architecturally zero
        }
        let pc = words[NUM_REGS] as usize;
        let retired = words[NUM_REGS + 1];
        let halted = match words[NUM_REGS + 2] {
            0 => false,
            1 => true,
            _ => return None,
        };
        *words = &words[NUM_REGS + 3..];
        let memory = SparseMemory::restore_state(words)?;
        Some(Checkpoint {
            regs,
            pc,
            memory,
            retired,
            halted,
        })
    }
}

/// In-order functional emulator.
///
/// # Examples
///
/// ```
/// use dgl_isa::{Emulator, ProgramBuilder, Reg, SparseMemory};
///
/// let r1 = Reg::new(1);
/// let mut b = ProgramBuilder::new("p");
/// b.imm(r1, 10).halt();
/// let p = b.build()?;
/// let mut emu = Emulator::new(&p, SparseMemory::new());
/// emu.run(100)?;
/// assert_eq!(emu.reg(r1), 10);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Emulator<'p> {
    program: &'p Program,
    memory: SparseMemory,
    regs: [i64; NUM_REGS],
    pc: usize,
    retired: u64,
    halted: bool,
    loads: u64,
    stores: u64,
    branches: u64,
    taken_branches: u64,
}

impl<'p> Emulator<'p> {
    /// Creates an emulator at pc 0 with zeroed registers and the given
    /// initial memory image.
    pub fn new(program: &'p Program, memory: SparseMemory) -> Self {
        Self {
            program,
            memory,
            regs: [0; NUM_REGS],
            pc: 0,
            retired: 0,
            halted: false,
            loads: 0,
            stores: 0,
            branches: 0,
            taken_branches: 0,
        }
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Sets an architectural register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// A snapshot of all architectural registers.
    pub fn regs(&self) -> [i64; NUM_REGS] {
        self.regs
    }

    /// The memory image (borrow).
    pub fn memory(&self) -> &SparseMemory {
        &self.memory
    }

    /// Consumes the emulator, returning the final memory image.
    pub fn into_memory(self) -> SparseMemory {
        self.memory
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Whether `halt` has been retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Captures the current architectural state as a [`Checkpoint`].
    ///
    /// The snapshot sits at a retired-instruction boundary: everything
    /// up to [`retired`](Self::retired) has fully executed, nothing
    /// after it has started.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            regs: self.regs,
            pc: self.pc,
            memory: self.memory.clone(),
            retired: self.retired,
            halted: self.halted,
        }
    }

    /// Rebuilds an emulator from a [`Checkpoint`], resuming at its PC.
    ///
    /// `retired` continues from the checkpoint so whole-run instruction
    /// counts line up; the instruction-mix counters
    /// ([`mix`](Self::mix)) restart at zero because the checkpoint does
    /// not record them.
    pub fn from_checkpoint(program: &'p Program, cp: Checkpoint) -> Self {
        Self {
            program,
            memory: cp.memory,
            regs: cp.regs,
            pc: cp.pc,
            retired: cp.retired,
            halted: cp.halted,
            loads: 0,
            stores: 0,
            branches: 0,
            taken_branches: 0,
        }
    }

    /// `(loads, stores, branches, taken_branches)` retired so far.
    pub fn mix(&self) -> (u64, u64, u64, u64) {
        (self.loads, self.stores, self.branches, self.taken_branches)
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(true)` if an instruction retired, `Ok(false)` if the
    /// machine has already halted.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on invalid indirect targets or running off the
    /// program end.
    pub fn step(&mut self) -> Result<bool, EmuError> {
        self.step_observed(&mut |_| {})
    }

    /// Executes one instruction, reporting each [`ArchEvent`] it
    /// retires to `observe`. [`step`](Self::step) is this with a no-op
    /// observer; sampled simulation uses the event stream to warm
    /// caches and predictors during functional fast-forward.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on invalid indirect targets or running off the
    /// program end.
    pub fn step_observed(&mut self, observe: &mut impl FnMut(ArchEvent)) -> Result<bool, EmuError> {
        if self.halted {
            return Ok(false);
        }
        let inst = self
            .program
            .fetch(self.pc)
            .ok_or(EmuError::RanOffEnd { pc: self.pc })?;
        let mut next_pc = self.pc + 1;
        match inst.op {
            Op::Nop => {}
            Op::Halt => {
                self.halted = true;
            }
            Op::Imm { dst, value } => self.set_reg(dst, value),
            Op::Alu { op, dst, a, b } => {
                let bv = match b {
                    crate::inst::Src::Reg(r) => self.reg(r),
                    crate::inst::Src::Imm(i) => i as i64,
                };
                self.set_reg(dst, op.apply(self.reg(a), bv));
            }
            Op::Load {
                width,
                dst,
                base,
                offset,
            } => {
                let addr = effective_addr(self.reg(base), offset);
                let value = self.memory.read(addr, width) as i64;
                self.set_reg(dst, value);
                self.loads += 1;
                observe(ArchEvent::Load { pc: self.pc, addr });
            }
            Op::Store {
                width,
                src,
                base,
                offset,
            } => {
                let addr = effective_addr(self.reg(base), offset);
                self.memory.write(addr, self.reg(src) as u64, width);
                self.stores += 1;
                observe(ArchEvent::Store { pc: self.pc, addr });
            }
            Op::Branch { cond, a, b, target } => {
                self.branches += 1;
                let taken = cond.eval(self.reg(a), self.reg(b));
                if taken {
                    self.taken_branches += 1;
                    next_pc = target;
                }
                observe(ArchEvent::Branch {
                    pc: self.pc,
                    taken,
                    next: next_pc,
                });
            }
            Op::Jump { target } => next_pc = target,
            Op::Call { target } => {
                self.set_reg(crate::inst::LINK_REG, (self.pc + 1) as i64);
                next_pc = target;
            }
            Op::Ret => {
                let target = self.reg(crate::inst::LINK_REG) as u64;
                if target as usize >= self.program.len() {
                    return Err(EmuError::BadIndirectTarget {
                        pc: self.pc,
                        target,
                    });
                }
                next_pc = target as usize;
                observe(ArchEvent::Branch {
                    pc: self.pc,
                    taken: true,
                    next: next_pc,
                });
            }
            Op::JumpReg { base } => {
                let target = self.reg(base) as u64;
                if target as usize >= self.program.len() {
                    return Err(EmuError::BadIndirectTarget {
                        pc: self.pc,
                        target,
                    });
                }
                next_pc = target as usize;
                observe(ArchEvent::Branch {
                    pc: self.pc,
                    taken: true,
                    next: next_pc,
                });
            }
        }
        self.retired += 1;
        if !self.halted {
            self.pc = next_pc;
        }
        Ok(true)
    }

    /// Runs until `halt` or until `max_steps` instructions retire.
    ///
    /// # Errors
    ///
    /// Propagates [`EmuError`] from [`step`](Self::step).
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, EmuError> {
        let mut steps = 0;
        while steps < max_steps && !self.halted {
            self.step()?;
            steps += 1;
        }
        Ok(RunResult {
            instructions: self.retired,
            halted: self.halted,
        })
    }

    /// Accesses memory widths directly — test helper mirroring the loads
    /// the program would perform.
    pub fn peek(&self, addr: u64, width: Width) -> u64 {
        self.memory.read(addr, width)
    }
}

/// Computes `base + offset` with wrapping, interpreting the register as an
/// unsigned address.
pub fn effective_addr(base: i64, offset: i32) -> u64 {
    (base as u64).wrapping_add(offset as i64 as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn arithmetic_loop() {
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let mut b = ProgramBuilder::new("sum");
        b.imm(r1, 0)
            .imm(r2, 10)
            .label("loop")
            .add(r1, r1, r2)
            .subi(r2, r2, 1)
            .bne(r2, Reg::ZERO, "loop")
            .halt();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p, SparseMemory::new());
        let res = emu.run(1000).unwrap();
        assert!(res.halted);
        assert_eq!(emu.reg(r1), 55);
        let (_, _, branches, taken) = emu.mix();
        assert_eq!(branches, 10);
        assert_eq!(taken, 9);
    }

    #[test]
    fn loads_and_stores() {
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let mut b = ProgramBuilder::new("mem");
        b.imm(r1, 0x1000)
            .load(r2, r1, 0)
            .addi(r2, r2, 1)
            .store(r2, r1, 8)
            .halt();
        let p = b.build().unwrap();
        let mut mem = SparseMemory::new();
        mem.write_u64(0x1000, 41);
        let mut emu = Emulator::new(&p, mem);
        emu.run(100).unwrap();
        assert_eq!(emu.memory().read_u64(0x1008), 42);
        let (loads, stores, _, _) = emu.mix();
        assert_eq!((loads, stores), (1, 1));
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut b = ProgramBuilder::new("z");
        b.imm(Reg::ZERO, 99).halt();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p, SparseMemory::new());
        emu.run(10).unwrap();
        assert_eq!(emu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn indirect_jump() {
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        // 0: imm r1, 3 ; 1: jr r1 ; 2: imm r2, 1 (skipped) ; 3: halt
        let mut b = ProgramBuilder::new("jr");
        b.imm(r1, 3).jr(r1).imm(r2, 1).halt();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p, SparseMemory::new());
        let res = emu.run(10).unwrap();
        assert!(res.halted);
        assert_eq!(emu.reg(r2), 0);
    }

    #[test]
    fn bad_indirect_target_errors() {
        let r1 = Reg::new(1);
        let mut b = ProgramBuilder::new("bad");
        b.imm(r1, 1000).jr(r1).halt();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p, SparseMemory::new());
        assert!(matches!(
            emu.run(10),
            Err(EmuError::BadIndirectTarget { pc: 1, .. })
        ));
    }

    #[test]
    fn ran_off_end_errors() {
        let p = Program::new("noend", vec![Op::Nop]).unwrap();
        let mut emu = Emulator::new(&p, SparseMemory::new());
        assert!(matches!(emu.run(10), Err(EmuError::RanOffEnd { pc: 1 })));
    }

    #[test]
    fn step_budget_stops_without_halt() {
        let mut b = ProgramBuilder::new("inf");
        b.label("spin").jmp("spin");
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p, SparseMemory::new());
        let res = emu.run(100).unwrap();
        assert!(!res.halted);
        assert_eq!(res.instructions, 100);
    }

    #[test]
    fn effective_addr_wraps() {
        assert_eq!(effective_addr(-8, 4), u64::MAX - 3);
        assert_eq!(effective_addr(0x1000, -16), 0xff0);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let mut b = ProgramBuilder::new("cp");
        b.imm(r1, 0x1000)
            .imm(r2, 20)
            .label("loop")
            .load(Reg::new(3), r1, 0)
            .addi(Reg::new(3), Reg::new(3), 1)
            .store(Reg::new(3), r1, 0)
            .addi(r1, r1, 8)
            .subi(r2, r2, 1)
            .bne(r2, Reg::ZERO, "loop")
            .halt();
        let p = b.build().unwrap();

        let mut straight = Emulator::new(&p, SparseMemory::new());
        straight.run(10_000).unwrap();

        let mut front = Emulator::new(&p, SparseMemory::new());
        front.run(37).unwrap();
        let cp = front.checkpoint();
        assert_eq!(cp.retired, 37);
        assert!(!cp.halted);
        let mut resumed = Emulator::from_checkpoint(&p, cp);
        resumed.run(10_000).unwrap();

        assert_eq!(resumed.retired(), straight.retired());
        assert_eq!(resumed.regs(), straight.regs());
        assert_eq!(resumed.memory(), straight.memory());
        assert!(resumed.halted());
    }

    #[test]
    fn checkpoint_of_halted_machine_stays_halted() {
        let p = Program::new("h", vec![Op::Halt]).unwrap();
        let mut emu = Emulator::new(&p, SparseMemory::new());
        emu.run(10).unwrap();
        let cp = emu.checkpoint();
        assert!(cp.halted);
        let mut resumed = Emulator::from_checkpoint(&p, cp);
        assert!(!resumed.step().unwrap());
        assert_eq!(resumed.retired(), 1);
    }

    #[test]
    fn halted_step_is_noop() {
        let p = Program::new("h", vec![Op::Halt]).unwrap();
        let mut emu = Emulator::new(&p, SparseMemory::new());
        emu.run(10).unwrap();
        assert!(!emu.step().unwrap());
        assert_eq!(emu.retired(), 1);
    }
}
