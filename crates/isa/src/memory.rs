//! Sparse, byte-addressable data memory.

use crate::inst::Width;
use std::collections::HashMap;
use std::sync::Arc;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u64 = (PAGE_SIZE - 1) as u64;

/// Sparse little-endian data memory backed by 4 KiB pages.
///
/// Unmapped bytes read as zero, and pages are allocated on first write.
/// Every access succeeds — the simulated machine has no MMU faults, which
/// keeps wrong-path (transient) execution total: a transient load to an
/// arbitrary address simply returns data, exactly the behaviour Spectre
/// gadgets rely on.
///
/// Pages are reference-counted and copied on write, so [`Clone`] is
/// O(mapped pages) refcount bumps rather than a deep copy. Sampled
/// simulation leans on this: every architectural checkpoint and every
/// window's seeded core share the same physical pages until one of them
/// stores.
///
/// # Examples
///
/// ```
/// use dgl_isa::SparseMemory;
///
/// let mut mem = SparseMemory::new();
/// mem.write_u64(0x1000, 42);
/// assert_eq!(mem.read_u64(0x1000), 42);
/// assert_eq!(mem.read_u64(0xdead_beef), 0); // unmapped reads as zero
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseMemory {
    pages: HashMap<u64, Arc<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped 4 KiB pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, mapping the page if needed. A page shared with
    /// a clone (checkpoint) is copied first, so writes never alias.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Arc::new([0u8; PAGE_SIZE]));
        Arc::make_mut(page)[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads `width` bytes little-endian, zero-extended to u64.
    pub fn read(&self, addr: u64, width: Width) -> u64 {
        let n = width.bytes();
        let mut out = 0u64;
        for i in 0..n {
            out |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        out
    }

    /// Writes the low `width` bytes of `value` little-endian.
    pub fn write(&mut self, addr: u64, value: u64, width: Width) {
        for i in 0..width.bytes() {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reads an 8-byte little-endian word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, Width::B8)
    }

    /// Writes an 8-byte little-endian word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, value, Width::B8)
    }

    /// Writes a slice of u64 words starting at `addr` (8-byte stride).
    pub fn write_words(&mut self, addr: u64, words: &[u64]) {
        for (i, &w) in words.iter().enumerate() {
            self.write_u64(addr.wrapping_add(8 * i as u64), w);
        }
    }

    /// Reads `count` u64 words starting at `addr`.
    pub fn read_words(&self, addr: u64, count: usize) -> Vec<u64> {
        (0..count)
            .map(|i| self.read_u64(addr.wrapping_add(8 * i as u64)))
            .collect()
    }

    /// Appends a canonical flat-word dump of the memory image to `out`:
    /// the mapped page count, then each page (sorted by page index) as
    /// its index followed by `PAGE_SIZE`/8 little-endian data words.
    ///
    /// The layout is the serialization hand-off for checkpoint stores:
    /// [`restore_state`](Self::restore_state) of a dump reproduces an
    /// image equal (`==`) to the original, and the word stream is
    /// deterministic (pages sorted), so a fingerprint over it
    /// identifies the image exactly.
    pub fn dump_state(&self, out: &mut Vec<u64>) {
        let mut indices: Vec<u64> = self.pages.keys().copied().collect();
        indices.sort_unstable();
        out.push(indices.len() as u64);
        for idx in indices {
            out.push(idx);
            let page = &self.pages[&idx];
            for chunk in page.chunks_exact(8) {
                out.push(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            }
        }
    }

    /// Rebuilds a memory image from a [`dump_state`](Self::dump_state)
    /// word stream, consuming exactly the words the dump produced.
    /// Returns `None` (leaving `words` in an unspecified position) when
    /// the stream is truncated or malformed — corrupted serialized
    /// checkpoints must surface as a clean miss, not a panic.
    pub fn restore_state(words: &mut &[u64]) -> Option<SparseMemory> {
        const PAGE_WORDS: usize = PAGE_SIZE / 8;
        let (&n_pages, rest) = words.split_first()?;
        *words = rest;
        let mut mem = SparseMemory::new();
        for _ in 0..n_pages {
            let (&idx, rest) = words.split_first()?;
            if rest.len() < PAGE_WORDS {
                return None;
            }
            let mut page = [0u8; PAGE_SIZE];
            for (i, &w) in rest[..PAGE_WORDS].iter().enumerate() {
                page[8 * i..8 * (i + 1)].copy_from_slice(&w.to_le_bytes());
            }
            *words = &rest[PAGE_WORDS..];
            if mem.pages.insert(idx, Arc::new(page)).is_some() {
                return None; // duplicate page index: malformed stream
            }
        }
        Some(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let mem = SparseMemory::new();
        assert_eq!(mem.read_u8(123), 0);
        assert_eq!(mem.read_u64(0xffff_ffff_ffff_fff0), 0);
        assert_eq!(mem.mapped_pages(), 0);
    }

    #[test]
    fn round_trip_all_widths() {
        let mut mem = SparseMemory::new();
        let addr = 0x2000;
        for (w, mask) in [
            (Width::B1, 0xffu64),
            (Width::B2, 0xffff),
            (Width::B4, 0xffff_ffff),
            (Width::B8, u64::MAX),
        ] {
            mem.write(addr, 0x1122_3344_5566_7788, w);
            assert_eq!(mem.read(addr, w), 0x1122_3344_5566_7788 & mask);
            mem.write(addr, 0, Width::B8);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = SparseMemory::new();
        mem.write_u64(0, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u8(0), 0x08);
        assert_eq!(mem.read_u8(7), 0x01);
    }

    #[test]
    fn crosses_page_boundary() {
        let mut mem = SparseMemory::new();
        let addr = (PAGE_SIZE as u64) - 4;
        mem.write_u64(addr, 0xdead_beef_cafe_f00d);
        assert_eq!(mem.read_u64(addr), 0xdead_beef_cafe_f00d);
        assert_eq!(mem.mapped_pages(), 2);
    }

    #[test]
    fn words_helpers() {
        let mut mem = SparseMemory::new();
        mem.write_words(0x100, &[1, 2, 3]);
        assert_eq!(mem.read_words(0x100, 3), vec![1, 2, 3]);
        assert_eq!(mem.read_u64(0x108), 2);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut a = SparseMemory::new();
        a.write_u64(0x1000, 1);
        let mut b = a.clone();
        b.write_u64(0x1000, 2); // shared page must be copied, not aliased
        b.write_u64(0x9000, 3); // fresh page must not appear in the original
        assert_eq!(a.read_u64(0x1000), 1);
        assert_eq!(b.read_u64(0x1000), 2);
        assert_eq!(a.read_u64(0x9000), 0);
        assert_eq!(a.mapped_pages(), 1);
        assert_eq!(b.mapped_pages(), 2);
    }

    #[test]
    fn wrapping_address_arithmetic() {
        let mut mem = SparseMemory::new();
        mem.write(u64::MAX, 0xABCD, Width::B2); // wraps to address 0
        assert_eq!(mem.read_u8(u64::MAX), 0xCD);
        assert_eq!(mem.read_u8(0), 0xAB);
    }
}
