//! The instruction set: operations, operands, and static properties.

use crate::reg::Reg;
use std::fmt;

/// Width of a memory access in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Width {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes (default).
    #[default]
    B8,
}

impl Width {
    /// Access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// Integer ALU operations. All arithmetic wraps; division by zero yields
/// `-1` (quotient) or the dividend (remainder), as in RISC-V, so no
/// instruction can fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (`/0 = -1`).
    Div,
    /// Signed remainder (`%0 = dividend`).
    Rem,
    /// Set if less-than, signed (result 0 or 1).
    Slt,
    /// Set if less-than, unsigned (result 0 or 1).
    Sltu,
}

impl AluOp {
    /// Execution latency in cycles for the out-of-order model.
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div | AluOp::Rem => 12,
            _ => 1,
        }
    }

    /// Applies the operation to two i64 operands.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 0x3f) as u32),
            AluOp::Shr => ((a as u64).wrapping_shr((b & 0x3f) as u32)) as i64,
            AluOp::Sar => a.wrapping_shr((b & 0x3f) as u32),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    -1
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::Slt => i64::from(a < b),
            AluOp::Sltu => i64::from((a as u64) < (b as u64)),
        }
    }

    /// Mnemonic used by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Branch conditions, comparing two registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Taken if `a == b`.
    Eq,
    /// Taken if `a != b`.
    Ne,
    /// Taken if `a < b` (signed).
    Lt,
    /// Taken if `a >= b` (signed).
    Ge,
    /// Taken if `a < b` (unsigned).
    Ltu,
    /// Taken if `a >= b` (unsigned).
    Geu,
}

impl Cond {
    /// Evaluates the condition on two operand values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Ltu => (a as u64) < (b as u64),
            Cond::Geu => (a as u64) >= (b as u64),
        }
    }

    /// Mnemonic used by the assembler (`beq`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        }
    }
}

/// The second operand of an ALU instruction: a register or a small
/// immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i32),
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl From<Reg> for Src {
    fn from(r: Reg) -> Self {
        Src::Reg(r)
    }
}

impl From<i32> for Src {
    fn from(i: i32) -> Self {
        Src::Imm(i)
    }
}

/// A machine operation. Branch and jump targets are instruction indices
/// into the owning [`Program`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// No operation.
    Nop,
    /// Stops execution; the architectural end of the program.
    Halt,
    /// `dst = value` (full 64-bit immediate).
    Imm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = op(a, b)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source operand.
        b: Src,
    },
    /// `dst = MEM[R[base] + offset]`.
    Load {
        /// Access width.
        width: Width,
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// `MEM[R[base] + offset] = src`.
    Store {
        /// Access width.
        width: Width,
        /// Data register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Conditional branch: if `cond(a, b)` then `pc = target` else fall
    /// through.
    Branch {
        /// Condition.
        cond: Cond,
        /// First comparison register.
        a: Reg,
        /// Second comparison register.
        b: Reg,
        /// Instruction index when taken.
        target: usize,
    },
    /// Unconditional jump to an instruction index.
    Jump {
        /// Instruction index.
        target: usize,
    },
    /// Indirect jump: `pc = R[base]` interpreted as an instruction index.
    JumpReg {
        /// Register holding the target instruction index.
        base: Reg,
    },
    /// Call: `R[LINK] = pc + 1; pc = target`. The front-end pushes the
    /// return address onto its return-address stack.
    Call {
        /// Instruction index of the callee.
        target: usize,
    },
    /// Return: `pc = R[LINK]`, predicted by the return-address stack.
    Ret,
}

/// The link register written by [`Op::Call`] and read by [`Op::Ret`]
/// (`r31`, as in common RISC ABIs).
pub const LINK_REG: Reg = Reg::LINK;

impl Op {
    /// The register this operation writes, if any. `r0` destinations are
    /// reported (the writeback stage discards them).
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Op::Imm { dst, .. } | Op::Alu { dst, .. } | Op::Load { dst, .. } => Some(dst),
            Op::Call { .. } => Some(LINK_REG),
            _ => None,
        }
    }

    /// The registers this operation reads, in operand order.
    pub fn srcs(&self) -> Vec<Reg> {
        match *self {
            Op::Alu { a, b, .. } => match b {
                Src::Reg(rb) => vec![a, rb],
                Src::Imm(_) => vec![a],
            },
            Op::Load { base, .. } => vec![base],
            Op::Store { src, base, .. } => vec![src, base],
            Op::Branch { a, b, .. } => vec![a, b],
            Op::JumpReg { base } => vec![base],
            Op::Ret => vec![LINK_REG],
            _ => Vec::new(),
        }
    }

    /// Whether this is a memory load.
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Load { .. })
    }

    /// Whether this is a memory store.
    pub fn is_store(&self) -> bool {
        matches!(self, Op::Store { .. })
    }

    /// Whether this operation redirects control flow (conditionally or
    /// not).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Op::Branch { .. } | Op::Jump { .. } | Op::JumpReg { .. }
        )
    }

    /// Whether this operation's direction must be predicted (conditional
    /// branches and indirect jumps; direct jumps are statically known).
    pub fn is_predicted_control(&self) -> bool {
        matches!(self, Op::Branch { .. } | Op::JumpReg { .. } | Op::Ret)
    }

    /// Execution latency in cycles (memory operations report their
    /// address-generation latency; the cache adds the rest).
    pub fn latency(&self) -> u32 {
        match self {
            Op::Alu { op, .. } => op.latency(),
            _ => 1,
        }
    }
}

/// A static instruction: an operation plus its program counter.
///
/// The PC doubles as the index into the program's instruction vector and
/// (shifted) as the predictor-visible address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Instruction index in the program.
    pub pc: usize,
    /// The operation.
    pub op: Op,
}

impl Inst {
    /// The address form of the PC used by PC-indexed predictors. Each
    /// instruction occupies 4 bytes in this address space, like a fixed
    /// width RISC encoding.
    pub fn pc_addr(&self) -> u64 {
        (self.pc as u64) << 2
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Nop => write!(f, "nop"),
            Op::Halt => write!(f, "halt"),
            Op::Imm { dst, value } => write!(f, "imm {dst}, {value}"),
            Op::Alu { op, dst, a, b } => write!(f, "{} {dst}, {a}, {b}", op.mnemonic()),
            Op::Load {
                width,
                dst,
                base,
                offset,
            } => write!(f, "load{width} {dst}, [{base}{offset:+}]"),
            Op::Store {
                width,
                src,
                base,
                offset,
            } => write!(f, "store{width} {src}, [{base}{offset:+}]"),
            Op::Branch { cond, a, b, target } => {
                write!(f, "{} {a}, {b}, @{target}", cond.mnemonic())
            }
            Op::Jump { target } => write!(f, "jmp @{target}"),
            Op::JumpReg { base } => write!(f, "jr {base}"),
            Op::Call { target } => write!(f, "call @{target}"),
            Op::Ret => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), -1);
        assert_eq!(AluOp::Mul.apply(i64::MAX, 2), -2); // wrapping
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Div.apply(7, 0), -1);
        assert_eq!(AluOp::Rem.apply(7, 0), 7);
        assert_eq!(AluOp::Slt.apply(-1, 0), 1);
        assert_eq!(AluOp::Sltu.apply(-1, 0), 0); // -1 is u64::MAX
        assert_eq!(AluOp::Shl.apply(1, 65), 2); // shift amount masked
        assert_eq!(AluOp::Shr.apply(-1, 63), 1);
        assert_eq!(AluOp::Sar.apply(-8, 1), -4);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.eval(1, 1));
        assert!(Cond::Ne.eval(1, 2));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(!Cond::Ltu.eval(-1, 0));
        assert!(Cond::Ge.eval(0, 0));
        assert!(Cond::Geu.eval(-1, 0));
    }

    #[test]
    fn op_dst_and_srcs() {
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let load = Op::Load {
            width: Width::B8,
            dst: r1,
            base: r2,
            offset: 8,
        };
        assert_eq!(load.dst(), Some(r1));
        assert_eq!(load.srcs(), vec![r2]);
        assert!(load.is_load());

        let alu = Op::Alu {
            op: AluOp::Add,
            dst: r1,
            a: r1,
            b: Src::Imm(1),
        };
        assert_eq!(alu.srcs(), vec![r1]);

        let store = Op::Store {
            width: Width::B8,
            src: r1,
            base: r2,
            offset: 0,
        };
        assert_eq!(store.dst(), None);
        assert_eq!(store.srcs(), vec![r1, r2]);
    }

    #[test]
    fn control_classification() {
        let br = Op::Branch {
            cond: Cond::Eq,
            a: Reg::ZERO,
            b: Reg::ZERO,
            target: 0,
        };
        assert!(br.is_control());
        assert!(br.is_predicted_control());
        let jmp = Op::Jump { target: 3 };
        assert!(jmp.is_control());
        assert!(!jmp.is_predicted_control());
        assert!(!Op::Nop.is_control());
    }

    #[test]
    fn latencies() {
        assert_eq!(Op::Nop.latency(), 1);
        assert_eq!(
            Op::Alu {
                op: AluOp::Div,
                dst: Reg::ZERO,
                a: Reg::ZERO,
                b: Src::Imm(0)
            }
            .latency(),
            12
        );
    }

    #[test]
    fn display_forms() {
        let r1 = Reg::new(1);
        let op = Op::Load {
            width: Width::B8,
            dst: r1,
            base: Reg::new(2),
            offset: -8,
        };
        assert_eq!(op.to_string(), "load8 r1, [r2-8]");
        assert_eq!(Op::Halt.to_string(), "halt");
    }

    #[test]
    fn pc_addr_is_word_aligned() {
        let inst = Inst { pc: 3, op: Op::Nop };
        assert_eq!(inst.pc_addr(), 12);
    }
}
