//! A small RISC-like ISA for the Doppelganger Loads simulator.
//!
//! The paper evaluates on SPEC binaries running under gem5. This
//! reproduction replaces that substrate with a compact load/store ISA that
//! is rich enough to express the memory- and control-behaviour classes the
//! evaluation depends on (dependent loads, pointer chasing, streaming,
//! data-dependent branches) while staying simple enough to simulate at
//! cycle granularity.
//!
//! The crate provides:
//!
//! * [`Inst`]/[`Op`] — the instruction set,
//! * [`Program`] — a validated sequence of instructions,
//! * [`ProgramBuilder`] — an ergonomic builder with label resolution,
//! * [`asm::assemble`] — a text assembler for `.dasm` sources,
//! * [`SparseMemory`] — byte-addressable sparse data memory,
//! * [`Emulator`] — the architectural golden model every timing
//!   configuration is validated against.
//!
//! # Examples
//!
//! ```
//! use dgl_isa::{Emulator, ProgramBuilder, Reg, SparseMemory};
//!
//! let r1 = Reg::new(1);
//! let r2 = Reg::new(2);
//! let mut b = ProgramBuilder::new("sum");
//! b.imm(r1, 0)
//!     .imm(r2, 5)
//!     .label("loop")
//!     .add(r1, r1, r2)
//!     .subi(r2, r2, 1)
//!     .bne(r2, Reg::ZERO, "loop")
//!     .halt();
//! let program = b.build()?;
//!
//! let mut emu = Emulator::new(&program, SparseMemory::new());
//! let result = emu.run(1_000)?;
//! assert_eq!(emu.reg(r1), 15);
//! assert!(result.halted);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod emu;
pub mod inst;
pub mod memory;
pub mod program;
pub mod reg;

pub use builder::{BuildError, ProgramBuilder};
pub use emu::{ArchEvent, Checkpoint, EmuError, Emulator, RunResult};
pub use inst::{AluOp, Cond, Inst, Op, Src, Width};
pub use memory::SparseMemory;
pub use program::Program;
pub use reg::Reg;
