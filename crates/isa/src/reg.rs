//! Architectural registers.

use std::fmt;
use std::str::FromStr;

/// Number of architectural integer registers.
pub const NUM_REGS: usize = 32;

/// An architectural register `r0`..`r31`.
///
/// `r0` is hardwired to zero, as in RISC-V: reads return 0 and writes are
/// discarded. This gives programs a free constant and the simulator a
/// convenient sink register.
///
/// # Examples
///
/// ```
/// use dgl_isa::Reg;
///
/// let r5 = Reg::new(5);
/// assert_eq!(r5.index(), 5);
/// assert_eq!(format!("{r5}"), "r5");
/// assert_eq!("r5".parse::<Reg>()?, r5);
/// # Ok::<(), dgl_isa::reg::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: Reg = Reg(0);

    /// The link register `r31` (see [`crate::inst::LINK_REG`]).
    pub const LINK: Reg = Reg(31);

    /// Creates a register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "register index {index} out of range (< {NUM_REGS})"
        );
        Reg(index)
    }

    /// Creates a register, returning `None` when out of range.
    pub fn try_new(index: u8) -> Option<Self> {
        if (index as usize) < NUM_REGS {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all architectural registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl Default for Reg {
    fn default() -> Self {
        Reg::ZERO
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRegError { text: s.to_owned() };
        let rest = s.strip_prefix('r').ok_or_else(err)?;
        let idx: u8 = rest.parse().map_err(|_| err())?;
        Reg::try_new(idx).ok_or_else(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
    }

    #[test]
    fn round_trips_through_display_and_parse() {
        for r in Reg::all() {
            let text = r.to_string();
            assert_eq!(text.parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Reg::try_new(32).is_none());
        assert!("r32".parse::<Reg>().is_err());
        assert!("x1".parse::<Reg>().is_err());
        assert!("r".parse::<Reg>().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(200);
    }

    #[test]
    fn all_covers_every_register() {
        assert_eq!(Reg::all().count(), NUM_REGS);
    }
}
