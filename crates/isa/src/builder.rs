//! An ergonomic program builder with label resolution.

use crate::inst::{AluOp, Cond, Op, Src, Width};
use crate::program::{Program, ProgramError};
use crate::reg::Reg;
use std::collections::HashMap;
use std::fmt;

/// Error produced by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A branch or jump references a label that was never defined.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
    /// The same label was defined twice.
    DuplicateLabel {
        /// The duplicated label.
        label: String,
    },
    /// Program-level validation failed.
    Program(ProgramError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
            BuildError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            BuildError::Program(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Program(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for BuildError {
    fn from(e: ProgramError) -> Self {
        BuildError::Program(e)
    }
}

#[derive(Debug, Clone)]
enum PendingOp {
    Ready(Op),
    Branch {
        cond: Cond,
        a: Reg,
        b: Reg,
        label: String,
    },
    Jump {
        label: String,
    },
    Call {
        label: String,
    },
}

/// Incrementally builds a [`Program`], resolving symbolic labels to
/// instruction indices at [`build`](ProgramBuilder::build) time.
///
/// All emit methods return `&mut Self` for chaining. Labels may be used
/// before they are defined (forward branches).
///
/// # Examples
///
/// ```
/// use dgl_isa::{ProgramBuilder, Reg};
///
/// let r1 = Reg::new(1);
/// let mut b = ProgramBuilder::new("count");
/// b.imm(r1, 3)
///     .label("top")
///     .subi(r1, r1, 1)
///     .bne(r1, Reg::ZERO, "top")
///     .halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), dgl_isa::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    ops: Vec<PendingOp>,
    labels: HashMap<String, usize>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program with the given name.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            ops: Vec::new(),
            labels: HashMap::new(),
            duplicate: None,
        }
    }

    /// Defines `label` at the current position.
    pub fn label(&mut self, label: &str) -> &mut Self {
        if self
            .labels
            .insert(label.to_owned(), self.ops.len())
            .is_some()
            && self.duplicate.is_none()
        {
            self.duplicate = Some(label.to_owned());
        }
        self
    }

    /// Current instruction index (where the next emitted op will land).
    pub fn here(&self) -> usize {
        self.ops.len()
    }

    /// Emits a raw operation.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.ops.push(PendingOp::Ready(op));
        self
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.op(Op::Nop)
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.op(Op::Halt)
    }

    /// Emits `dst = value`.
    pub fn imm(&mut self, dst: Reg, value: i64) -> &mut Self {
        self.op(Op::Imm { dst, value })
    }

    /// Emits a generic ALU op with a register or immediate second operand.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: impl Into<Src>) -> &mut Self {
        self.op(Op::Alu {
            op,
            dst,
            a,
            b: b.into(),
        })
    }

    /// Emits `dst = a + b`.
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.alu(AluOp::Add, dst, a, b)
    }

    /// Emits `dst = a + imm`.
    pub fn addi(&mut self, dst: Reg, a: Reg, imm: i32) -> &mut Self {
        self.alu(AluOp::Add, dst, a, imm)
    }

    /// Emits `dst = a - b`.
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.alu(AluOp::Sub, dst, a, b)
    }

    /// Emits `dst = a - imm`.
    pub fn subi(&mut self, dst: Reg, a: Reg, imm: i32) -> &mut Self {
        self.alu(AluOp::Sub, dst, a, imm)
    }

    /// Emits `dst = a * b`.
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.alu(AluOp::Mul, dst, a, b)
    }

    /// Emits `dst = a & imm`.
    pub fn andi(&mut self, dst: Reg, a: Reg, imm: i32) -> &mut Self {
        self.alu(AluOp::And, dst, a, imm)
    }

    /// Emits `dst = a ^ b`.
    pub fn xor(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.alu(AluOp::Xor, dst, a, b)
    }

    /// Emits `dst = a << imm`.
    pub fn shli(&mut self, dst: Reg, a: Reg, imm: i32) -> &mut Self {
        self.alu(AluOp::Shl, dst, a, imm)
    }

    /// Emits `dst = a >> imm` (logical).
    pub fn shri(&mut self, dst: Reg, a: Reg, imm: i32) -> &mut Self {
        self.alu(AluOp::Shr, dst, a, imm)
    }

    /// Emits an 8-byte load `dst = MEM[base + offset]`.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i32) -> &mut Self {
        self.load_w(Width::B8, dst, base, offset)
    }

    /// Emits a load of the given width.
    pub fn load_w(&mut self, width: Width, dst: Reg, base: Reg, offset: i32) -> &mut Self {
        self.op(Op::Load {
            width,
            dst,
            base,
            offset,
        })
    }

    /// Emits an 8-byte store `MEM[base + offset] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i32) -> &mut Self {
        self.store_w(Width::B8, src, base, offset)
    }

    /// Emits a store of the given width.
    pub fn store_w(&mut self, width: Width, src: Reg, base: Reg, offset: i32) -> &mut Self {
        self.op(Op::Store {
            width,
            src,
            base,
            offset,
        })
    }

    /// Emits a conditional branch to `label`.
    pub fn branch(&mut self, cond: Cond, a: Reg, b: Reg, label: &str) -> &mut Self {
        self.ops.push(PendingOp::Branch {
            cond,
            a,
            b,
            label: label.to_owned(),
        });
        self
    }

    /// Emits `beq a, b, label`.
    pub fn beq(&mut self, a: Reg, b: Reg, label: &str) -> &mut Self {
        self.branch(Cond::Eq, a, b, label)
    }

    /// Emits `bne a, b, label`.
    pub fn bne(&mut self, a: Reg, b: Reg, label: &str) -> &mut Self {
        self.branch(Cond::Ne, a, b, label)
    }

    /// Emits `blt a, b, label` (signed).
    pub fn blt(&mut self, a: Reg, b: Reg, label: &str) -> &mut Self {
        self.branch(Cond::Lt, a, b, label)
    }

    /// Emits `bge a, b, label` (signed).
    pub fn bge(&mut self, a: Reg, b: Reg, label: &str) -> &mut Self {
        self.branch(Cond::Ge, a, b, label)
    }

    /// Emits an unconditional jump to `label`.
    pub fn jmp(&mut self, label: &str) -> &mut Self {
        self.ops.push(PendingOp::Jump {
            label: label.to_owned(),
        });
        self
    }

    /// Emits an indirect jump through `base`.
    pub fn jr(&mut self, base: Reg) -> &mut Self {
        self.op(Op::JumpReg { base })
    }

    /// Emits a call to `label` (links into `r31`).
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.ops.push(PendingOp::Call {
            label: label.to_owned(),
        });
        self
    }

    /// Emits a return through `r31`.
    pub fn ret(&mut self) -> &mut Self {
        self.op(Op::Ret)
    }

    /// Resolves labels and validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateLabel`], [`BuildError::UndefinedLabel`],
    /// or a wrapped [`ProgramError`].
    pub fn build(&self) -> Result<Program, BuildError> {
        if let Some(label) = &self.duplicate {
            return Err(BuildError::DuplicateLabel {
                label: label.clone(),
            });
        }
        let resolve = |label: &str| -> Result<usize, BuildError> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| BuildError::UndefinedLabel {
                    label: label.to_owned(),
                })
        };
        let mut ops = Vec::with_capacity(self.ops.len());
        for pending in &self.ops {
            let op = match pending {
                PendingOp::Ready(op) => *op,
                PendingOp::Branch { cond, a, b, label } => Op::Branch {
                    cond: *cond,
                    a: *a,
                    b: *b,
                    target: resolve(label)?,
                },
                PendingOp::Jump { label } => Op::Jump {
                    target: resolve(label)?,
                },
                PendingOp::Call { label } => Op::Call {
                    target: resolve(label)?,
                },
            };
            ops.push(op);
        }
        Ok(Program::new(&self.name, ops)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_forward_and_backward_labels() {
        let r1 = Reg::new(1);
        let mut b = ProgramBuilder::new("p");
        b.jmp("end")
            .label("back")
            .imm(r1, 1)
            .label("end")
            .beq(Reg::ZERO, Reg::ZERO, "back")
            .halt();
        let p = b.build().unwrap();
        assert_eq!(p.fetch(0).unwrap().op, Op::Jump { target: 2 });
        match p.fetch(2).unwrap().op {
            Op::Branch { target, .. } => assert_eq!(target, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undefined_label_errors() {
        let mut b = ProgramBuilder::new("p");
        b.jmp("missing").halt();
        assert_eq!(
            b.build(),
            Err(BuildError::UndefinedLabel {
                label: "missing".into()
            })
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new("p");
        b.label("x").nop().label("x").halt();
        assert!(matches!(b.build(), Err(BuildError::DuplicateLabel { .. })));
    }

    #[test]
    fn empty_program_errors() {
        let b = ProgramBuilder::new("p");
        assert!(matches!(
            b.build(),
            Err(BuildError::Program(ProgramError::Empty))
        ));
    }

    #[test]
    fn here_tracks_position() {
        let mut b = ProgramBuilder::new("p");
        assert_eq!(b.here(), 0);
        b.nop().nop();
        assert_eq!(b.here(), 2);
    }

    #[test]
    fn emits_expected_ops() {
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let mut b = ProgramBuilder::new("p");
        b.imm(r1, 7)
            .addi(r2, r1, 1)
            .load(r2, r1, 16)
            .store(r2, r1, 24)
            .halt();
        let p = b.build().unwrap();
        assert!(matches!(
            p.fetch(2).unwrap().op,
            Op::Load { offset: 16, .. }
        ));
        assert!(matches!(
            p.fetch(3).unwrap().op,
            Op::Store { offset: 24, .. }
        ));
    }
}
