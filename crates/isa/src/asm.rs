//! A small text assembler for `.dasm` sources.
//!
//! The syntax mirrors the [`Op`] display forms:
//!
//! ```text
//! # comments start with '#' or ';'
//!         imm   r1, 0x1000      # decimal or 0x hex immediates
//! loop:   load  r2, [r1 + 8]    # widths: load1/load2/load4/load8 (load = load8)
//!         add   r3, r3, r2
//!         addi  r1, r1, 8       # alu-with-immediate via <op>i
//!         bne   r1, r4, loop
//!         store r3, [r1]        # offset defaults to 0
//!         halt
//! ```
//!
//! # Examples
//!
//! ```
//! use dgl_isa::asm::assemble;
//!
//! let p = assemble("dots", "imm r1, 5\nhalt\n")?;
//! assert_eq!(p.len(), 2);
//! # Ok::<(), dgl_isa::asm::AsmError>(())
//! ```

use crate::builder::{BuildError, ProgramBuilder};
use crate::inst::{AluOp, Cond, Op, Src, Width};
use crate::program::Program;
use crate::reg::Reg;
use std::fmt;

/// Error produced by [`assemble`], with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number where assembly failed (0 for build-stage
    /// errors such as undefined labels).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly failed: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

impl From<BuildError> for AsmError {
    fn from(e: BuildError) -> Self {
        AsmError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    tok.trim()
        .parse()
        .map_err(|_| err(line, format!("expected register, got `{tok}`")))
}

fn parse_int(tok: &str, line: usize) -> Result<i64, AsmError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest.trim_start()),
        None => (false, tok.strip_prefix('+').unwrap_or(tok).trim_start()),
    };
    // Parse the magnitude as u64 so the full i64 range round-trips:
    // `-9223372036854775808` (i64::MIN) has a magnitude one past
    // i64::MAX, and hex literals may spell any 64-bit pattern.
    let magnitude =
        if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16)
        } else {
            body.parse::<u64>()
        }
        .map_err(|_| err(line, format!("expected integer, got `{tok}`")))?;
    let in_range = if neg {
        magnitude <= (i64::MAX as u64) + 1
    } else {
        // Decimal stays within i64; hex may name any bit pattern.
        magnitude <= i64::MAX as u64 || body.starts_with("0x") || body.starts_with("0X")
    };
    if !in_range {
        return Err(err(line, format!("integer `{tok}` out of i64 range")));
    }
    Ok(if neg {
        magnitude.wrapping_neg() as i64
    } else {
        magnitude as i64
    })
}

/// Parses `[rN]`, `[rN + imm]`, or `[rN - imm]`.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(Reg, i32), AsmError> {
    let inner = tok
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| {
            err(
                line,
                format!("expected memory operand `[reg+off]`, got `{tok}`"),
            )
        })?;
    // Find a +/- separator that is not the leading register character.
    if let Some(pos) = inner.find(['+', '-']) {
        let (reg_part, rest) = inner.split_at(pos);
        let base = parse_reg(reg_part, line)?;
        let offset = parse_int(rest, line)?;
        let offset = i32::try_from(offset)
            .map_err(|_| err(line, format!("offset `{rest}` out of i32 range")))?;
        Ok((base, offset))
    } else {
        Ok((parse_reg(inner, line)?, 0))
    }
}

fn alu_from_mnemonic(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "sar" => AluOp::Sar,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        _ => return None,
    })
}

fn cond_from_mnemonic(m: &str) -> Option<Cond> {
    Some(match m {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "bge" => Cond::Ge,
        "bltu" => Cond::Ltu,
        "bgeu" => Cond::Geu,
        _ => return None,
    })
}

fn width_from_suffix(suffix: &str, line: usize) -> Result<Width, AsmError> {
    match suffix {
        "" | "8" => Ok(Width::B8),
        "4" => Ok(Width::B4),
        "2" => Ok(Width::B2),
        "1" => Ok(Width::B1),
        other => Err(err(line, format!("unknown access width `{other}`"))),
    }
}

/// Assembles `.dasm` source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the offending line number for syntax
/// errors, or line 0 for label-resolution errors.
pub fn assemble(name: &str, source: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new(name);
    for (idx, raw_line) in source.lines().enumerate() {
        let lineno = idx + 1;
        let mut line = raw_line;
        if let Some(pos) = line.find(['#', ';']) {
            line = &line[..pos];
        }
        let mut line = line.trim();
        // Leading labels, possibly several.
        while let Some(pos) = line.find(':') {
            let (label, rest) = line.split_at(pos);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(lineno, format!("malformed label before `{line}`")));
            }
            b.label(label);
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        let (mnemonic, args) = match line.find(char::is_whitespace) {
            Some(pos) => (&line[..pos], line[pos..].trim()),
            None => (line, ""),
        };
        let args: Vec<&str> = if args.is_empty() {
            Vec::new()
        } else {
            args.split(',').map(str::trim).collect()
        };
        let argc = |n: usize| -> Result<(), AsmError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(err(
                    lineno,
                    format!("`{mnemonic}` expects {n} operand(s), got {}", args.len()),
                ))
            }
        };
        match mnemonic {
            "nop" => {
                argc(0)?;
                b.nop();
            }
            "halt" => {
                argc(0)?;
                b.halt();
            }
            "imm" => {
                argc(2)?;
                let dst = parse_reg(args[0], lineno)?;
                let value = parse_int(args[1], lineno)?;
                b.imm(dst, value);
            }
            "jmp" => {
                argc(1)?;
                b.jmp(args[0]);
            }
            "call" => {
                argc(1)?;
                b.call(args[0]);
            }
            "ret" => {
                argc(0)?;
                b.ret();
            }
            "jr" => {
                argc(1)?;
                b.jr(parse_reg(args[0], lineno)?);
            }
            m if m.starts_with("load") => {
                argc(2)?;
                let width = width_from_suffix(&m[4..], lineno)?;
                let dst = parse_reg(args[0], lineno)?;
                let (base, offset) = parse_mem_operand(args[1], lineno)?;
                b.load_w(width, dst, base, offset);
            }
            m if m.starts_with("store") => {
                argc(2)?;
                let width = width_from_suffix(&m[5..], lineno)?;
                let src = parse_reg(args[0], lineno)?;
                let (base, offset) = parse_mem_operand(args[1], lineno)?;
                b.store_w(width, src, base, offset);
            }
            m => {
                if let Some(cond) = cond_from_mnemonic(m) {
                    argc(3)?;
                    let a = parse_reg(args[0], lineno)?;
                    let rb = parse_reg(args[1], lineno)?;
                    b.branch(cond, a, rb, args[2]);
                } else if let Some((alu, imm_form)) = m
                    .strip_suffix('i')
                    .and_then(alu_from_mnemonic)
                    .map(|op| (op, true))
                    .or_else(|| alu_from_mnemonic(m).map(|op| (op, false)))
                {
                    argc(3)?;
                    let dst = parse_reg(args[0], lineno)?;
                    let a = parse_reg(args[1], lineno)?;
                    let src = if imm_form {
                        let v = parse_int(args[2], lineno)?;
                        Src::Imm(i32::try_from(v).map_err(|_| {
                            err(lineno, format!("immediate `{v}` out of i32 range"))
                        })?)
                    } else {
                        Src::Reg(parse_reg(args[2], lineno)?)
                    };
                    b.op(Op::Alu {
                        op: alu,
                        dst,
                        a,
                        b: src,
                    });
                } else {
                    return Err(err(lineno, format!("unknown mnemonic `{m}`")));
                }
            }
        }
    }
    Ok(b.build()?)
}

/// Renders a [`Program`] back into `.dasm` source text that
/// [`assemble`] round-trips to the identical instruction sequence.
///
/// Static control-flow targets become synthetic `L<pc>:` labels (the
/// assembler has no numeric-target syntax), ALU immediates use the
/// `<op>i` forms, and loads/stores carry explicit width suffixes. This
/// is what lets the fuzzer persist generated programs as replayable
/// corpus entries.
///
/// # Examples
///
/// ```
/// use dgl_isa::asm::{assemble, disassemble};
///
/// let p = assemble("loop", "imm r1, 2\nL1: subi r1, r1, 1\nbne r1, r0, L1\nhalt\n")?;
/// let q = assemble("loop", &disassemble(&p))?;
/// assert_eq!(p.insts(), q.insts());
/// # Ok::<(), dgl_isa::asm::AsmError>(())
/// ```
#[must_use]
pub fn disassemble(program: &Program) -> String {
    use std::collections::BTreeSet;
    use std::fmt::Write as _;
    let targets: BTreeSet<usize> = program
        .insts()
        .iter()
        .filter_map(|inst| match inst.op {
            Op::Branch { target, .. } | Op::Jump { target } | Op::Call { target } => Some(target),
            _ => None,
        })
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "# {}", program.name());
    for inst in program.insts() {
        if targets.contains(&inst.pc) {
            let _ = writeln!(out, "L{}:", inst.pc);
        }
        let _ = match inst.op {
            Op::Alu {
                op,
                dst,
                a,
                b: Src::Imm(i),
            } => writeln!(out, "    {}i {dst}, {a}, {i}", op.mnemonic()),
            Op::Branch { cond, a, b, target } => {
                writeln!(out, "    {} {a}, {b}, L{target}", cond.mnemonic())
            }
            Op::Jump { target } => writeln!(out, "    jmp L{target}"),
            Op::Call { target } => writeln!(out, "    call L{target}"),
            op => writeln!(out, "    {op}"),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Emulator, SparseMemory};

    #[test]
    fn assembles_and_runs_a_loop() {
        let src = r"
            # sum 1..5
            imm r1, 0
            imm r2, 5
        loop:
            add r1, r1, r2
            subi r2, r2, 1
            bne r2, r0, loop
            halt
        ";
        let p = assemble("sum", src).unwrap();
        let mut emu = Emulator::new(&p, SparseMemory::new());
        emu.run(100).unwrap();
        assert_eq!(emu.reg(Reg::new(1)), 15);
    }

    #[test]
    fn memory_operands() {
        let p = assemble(
            "mem",
            "imm r1, 0x100\nload r2, [r1 + 8]\nstore r2, [r1-8]\nload4 r3, [r1]\nhalt\n",
        )
        .unwrap();
        assert!(matches!(
            p.fetch(1).unwrap().op,
            Op::Load {
                offset: 8,
                width: Width::B8,
                ..
            }
        ));
        assert!(matches!(
            p.fetch(2).unwrap().op,
            Op::Store { offset: -8, .. }
        ));
        assert!(matches!(
            p.fetch(3).unwrap().op,
            Op::Load {
                width: Width::B4,
                ..
            }
        ));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("imm", "imm r1, 0x10\nimm r2, -3\nhalt\n").unwrap();
        assert!(matches!(p.fetch(0).unwrap().op, Op::Imm { value: 16, .. }));
        assert!(matches!(p.fetch(1).unwrap().op, Op::Imm { value: -3, .. }));
    }

    #[test]
    fn labels_on_their_own_line() {
        let p = assemble("l", "top:\n  jmp top\n").unwrap();
        assert!(matches!(p.fetch(0).unwrap().op, Op::Jump { target: 0 }));
    }

    #[test]
    fn comments_are_ignored() {
        let p = assemble("c", "nop # trailing\n; full line\nhalt\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn error_reports_line_number() {
        let e = assemble("bad", "nop\nbogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn undefined_label_reports_build_error() {
        let e = assemble("bad", "jmp nowhere\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn wrong_arity_errors() {
        assert!(assemble("bad", "imm r1\n").is_err());
        assert!(assemble("bad", "add r1, r2\n").is_err());
    }

    #[test]
    fn immediate_alu_forms() {
        let p = assemble("a", "addi r1, r1, 4\nshli r2, r1, 3\nhalt\n").unwrap();
        assert!(matches!(
            p.fetch(0).unwrap().op,
            Op::Alu {
                op: AluOp::Add,
                b: Src::Imm(4),
                ..
            }
        ));
        assert!(matches!(
            p.fetch(1).unwrap().op,
            Op::Alu {
                op: AluOp::Shl,
                b: Src::Imm(3),
                ..
            }
        ));
    }

    #[test]
    fn round_trips_display_mnemonics() {
        // Every ALU mnemonic parses back to its op.
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Sar,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::Slt,
            AluOp::Sltu,
        ] {
            let src = format!("{} r1, r2, r3\nhalt\n", op.mnemonic());
            let p = assemble("rt", &src).unwrap();
            assert!(matches!(p.fetch(0).unwrap().op, Op::Alu { op: o, .. } if o == op));
        }
    }

    #[test]
    fn disassemble_round_trips_every_op_shape() {
        // One of everything: widths, negative offsets/immediates, both
        // ALU forms, forward/backward branches, call/ret, jr, jump.
        let mut b = ProgramBuilder::new("everything");
        let r = Reg::new;
        b.imm(r(1), -0x4000)
            .imm(r(2), i64::MIN)
            .label("top")
            .load_w(Width::B1, r(3), r(1), -8)
            .load_w(Width::B2, r(3), r(1), 0)
            .load_w(Width::B4, r(3), r(1), 2)
            .load_w(Width::B8, r(3), r(1), 16)
            .store_w(Width::B1, r(3), r(1), -1)
            .store_w(Width::B8, r(3), r(1), 0)
            .alu(AluOp::Sltu, r(4), r(3), r(2))
            .alu(AluOp::Sar, r(4), r(4), -3)
            .branch(Cond::Geu, r(4), r(2), "top")
            .branch(Cond::Lt, r(4), r(2), "fwd")
            .call("fn")
            .nop()
            .label("fwd")
            .jmp("end")
            .label("fn")
            .imm(r(5), 7)
            .jr(r(5))
            .ret()
            .label("end")
            .halt();
        let p = b.build().unwrap();
        let text = disassemble(&p);
        let q = assemble(p.name(), &text).unwrap();
        assert_eq!(
            p.insts(),
            q.insts(),
            "round-trip changed the program:\n{text}"
        );
    }
}
