//! Validated instruction sequences.

use crate::inst::{Inst, Op};
use std::fmt;

/// Error produced when validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// A branch or jump targets an instruction index outside the program.
    TargetOutOfRange {
        /// PC of the offending instruction.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program contains no instructions"),
            ProgramError::TargetOutOfRange { pc, target } => {
                write!(f, "instruction {pc} targets out-of-range index {target}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated, immutable sequence of instructions.
///
/// Construction checks that every *static* control-flow target is in
/// range, so the simulator front-end can index unchecked. Indirect jumps
/// ([`Op::JumpReg`]) are checked dynamically: an out-of-range target stops
/// the fetch stream like a [`Op::Halt`] would (on the correct path this is
/// an error reported by the emulator; on the wrong path it simply starves
/// fetch until the squash arrives).
///
/// # Examples
///
/// ```
/// use dgl_isa::{Op, Program};
///
/// let program = Program::new("tiny", vec![Op::Nop, Op::Halt])?;
/// assert_eq!(program.len(), 2);
/// assert!(matches!(program.fetch(1), Some(i) if i.op == Op::Halt));
/// # Ok::<(), dgl_isa::program::ProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
}

impl Program {
    /// Creates a program from raw operations.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::Empty`] for an empty op list and
    /// [`ProgramError::TargetOutOfRange`] when a static branch or jump
    /// target is out of range.
    pub fn new(name: &str, ops: Vec<Op>) -> Result<Self, ProgramError> {
        if ops.is_empty() {
            return Err(ProgramError::Empty);
        }
        let len = ops.len();
        for (pc, op) in ops.iter().enumerate() {
            let target = match *op {
                Op::Branch { target, .. } | Op::Jump { target } | Op::Call { target } => {
                    Some(target)
                }
                _ => None,
            };
            if let Some(target) = target {
                if target >= len {
                    return Err(ProgramError::TargetOutOfRange { pc, target });
                }
            }
        }
        let insts = ops
            .into_iter()
            .enumerate()
            .map(|(pc, op)| Inst { pc, op })
            .collect();
        Ok(Self {
            name: name.to_owned(),
            insts,
        })
    }

    /// The program's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty (never true for a validated program).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Fetches the instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: usize) -> Option<Inst> {
        self.insts.get(pc).copied()
    }

    /// All instructions in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Renders the program as assembly-like text.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for inst in &self.insts {
            let _ = writeln!(out, "{:5}: {}", inst.pc, inst.op);
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} insts)", self.name, self.insts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Cond;
    use crate::reg::Reg;

    #[test]
    fn rejects_empty() {
        assert_eq!(Program::new("e", vec![]), Err(ProgramError::Empty));
    }

    #[test]
    fn rejects_out_of_range_branch() {
        let ops = vec![
            Op::Branch {
                cond: Cond::Eq,
                a: Reg::ZERO,
                b: Reg::ZERO,
                target: 5,
            },
            Op::Halt,
        ];
        assert_eq!(
            Program::new("bad", ops),
            Err(ProgramError::TargetOutOfRange { pc: 0, target: 5 })
        );
    }

    #[test]
    fn rejects_out_of_range_jump() {
        let ops = vec![Op::Jump { target: 9 }];
        assert!(Program::new("bad", ops).is_err());
    }

    #[test]
    fn fetch_and_len() {
        let p = Program::new("p", vec![Op::Nop, Op::Halt]).unwrap();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.fetch(0).unwrap().op, Op::Nop);
        assert!(p.fetch(2).is_none());
        assert_eq!(p.name(), "p");
    }

    #[test]
    fn disassemble_contains_all_pcs() {
        let p = Program::new("p", vec![Op::Nop, Op::Nop, Op::Halt]).unwrap();
        let text = p.disassemble();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("halt"));
    }
}
