//! Property tests for the ISA layer: the assembler never panics on
//! arbitrary input, builder programs always emulate deterministically,
//! and memory behaves like a flat byte array.

use dgl_isa::asm::assemble;
use dgl_isa::{AluOp, Emulator, ProgramBuilder, Reg, SparseMemory, Width};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn assembler_never_panics(source in "\\PC{0,200}") {
        // Any unicode garbage: must return Ok or Err, never panic.
        let _ = assemble("fuzz", &source);
    }

    #[test]
    fn assembler_never_panics_on_plausible_lines(
        lines in prop::collection::vec(
            prop_oneof![
                Just("nop".to_owned()),
                Just("halt".to_owned()),
                (0u8..40, any::<i32>()).prop_map(|(r, v)| format!("imm r{r}, {v}")),
                (0u8..40, 0u8..40, 0u8..40).prop_map(|(a, b, c)| format!("add r{a}, r{b}, r{c}")),
                (0u8..40, 0u8..40, any::<i32>()).prop_map(|(a, b, o)| format!("load r{a}, [r{b} + {o}]")),
                (0u8..40, 0u8..40).prop_map(|(a, b)| format!("beq r{a}, r{b}, somewhere")),
                Just("somewhere:".to_owned()),
                Just("  # a comment".to_owned()),
            ],
            0..30,
        )
    ) {
        let source = lines.join("\n");
        let _ = assemble("fuzz", &source);
    }

    #[test]
    fn memory_behaves_like_flat_bytes(
        writes in prop::collection::vec((0u64..0x4000, any::<u64>(), 0u8..4), 1..60)
    ) {
        let widths = [Width::B1, Width::B2, Width::B4, Width::B8];
        let mut mem = SparseMemory::new();
        let mut model = vec![0u8; 0x4000 + 8];
        for (addr, value, w) in writes {
            let w = widths[w as usize % 4];
            mem.write(addr, value, w);
            for i in 0..w.bytes() {
                model[(addr + i) as usize] = (value >> (8 * i)) as u8;
            }
        }
        for a in (0..0x4000u64).step_by(97) {
            prop_assert_eq!(mem.read_u8(a), model[a as usize], "byte at {:#x}", a);
        }
    }

    #[test]
    fn emulator_is_deterministic(
        seeds in prop::collection::vec(any::<i64>(), 4),
        n in 1i64..40,
    ) {
        let mut b = ProgramBuilder::new("det");
        for (i, &s) in seeds.iter().enumerate() {
            b.imm(Reg::new(i as u8 + 1), s);
        }
        b.imm(Reg::new(6), n)
            .label("top")
            .alu(AluOp::Mul, Reg::new(1), Reg::new(1), Reg::new(2))
            .alu(AluOp::Xor, Reg::new(2), Reg::new(2), Reg::new(3))
            .subi(Reg::new(6), Reg::new(6), 1)
            .bne(Reg::new(6), Reg::ZERO, "top")
            .halt();
        let p = b.build().unwrap();
        let mut e1 = Emulator::new(&p, SparseMemory::new());
        let mut e2 = Emulator::new(&p, SparseMemory::new());
        e1.run(100_000).unwrap();
        e2.run(100_000).unwrap();
        prop_assert_eq!(e1.regs(), e2.regs());
    }
}
