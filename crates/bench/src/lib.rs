//! Shared helpers for the Doppelganger Loads benchmark harness.
//!
//! The binaries in this crate regenerate every table and figure of the
//! paper's evaluation:
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 (system configuration) |
//! | `fig1` | Figure 1 (headline geomean summary + baseline+AP) |
//! | `fig6` | Figure 6 (per-benchmark normalized IPC) |
//! | `fig7` | Figure 7 (predictor coverage/accuracy) |
//! | `fig8` | Figure 8 (normalized L1/L2 accesses) |
//! | `ablation` | design-choice sweeps (predictor size, bandwidth, ports) |
//!
//! Run them with `cargo run --release -p dgl-bench --bin <target> [insts]`,
//! where `insts` is the per-workload committed-instruction budget
//! (default 25000; EXPERIMENTS.md uses 150000).

/// Parses the per-workload instruction budget from `argv[1]`.
pub fn scale_from_args() -> dgl_workloads::Scale {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .map(dgl_workloads::Scale::Custom)
        .unwrap_or(dgl_workloads::Scale::Quick)
}
