//! Shared helpers for the Doppelganger Loads benchmark harness.
//!
//! The binaries in this crate regenerate every table and figure of the
//! paper's evaluation:
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 (system configuration) |
//! | `fig1` | Figure 1 (headline geomean summary + baseline+AP) |
//! | `fig6` | Figure 6 (per-benchmark normalized IPC) |
//! | `fig7` | Figure 7 (predictor coverage/accuracy) |
//! | `fig8` | Figure 8 (normalized L1/L2 accesses) |
//! | `ablation` | design-choice sweeps (predictor size, bandwidth, ports) |
//!
//! Run them with `cargo run --release -p dgl-bench --bin <target> [insts]`,
//! where `insts` is the per-workload committed-instruction budget
//! (default 25000; EXPERIMENTS.md uses 150000). The figure bins also
//! accept `--json` to emit the same table as machine-readable JSON —
//! these are the emitters the [`trajectory`] records are built from.

pub mod trajectory;

use dgl_workloads::Scale;

/// Parses one `insts` budget argument, exiting with status 2 (and an
/// error naming the bad value) when it is not a positive integer —
/// silently running the wrong budget is worse than not running at all.
fn parse_insts(arg: &str) -> Scale {
    match arg.parse::<u64>() {
        Ok(n) if n > 0 => Scale::Custom(n),
        _ => {
            eprintln!(
                "error: invalid insts argument `{arg}` (expected a positive \
                 integer committed-instruction budget, e.g. 25000)"
            );
            std::process::exit(2);
        }
    }
}

/// Parses the per-workload instruction budget from `argv[1]`
/// (defaulting to [`Scale::Quick`] when absent). An unparsable value
/// prints an error naming it and exits with status 2.
pub fn scale_from_args() -> Scale {
    match std::env::args().nth(1) {
        Some(arg) => parse_insts(&arg),
        None => Scale::Quick,
    }
}

/// Common figure-bin arguments: an optional positional `insts` budget
/// plus the `--json` output flag, in either order.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Per-workload committed-instruction budget.
    pub scale: Scale,
    /// Emit the figure as JSON on stdout instead of the ASCII table.
    pub json: bool,
}

impl BenchArgs {
    /// Parses the process arguments. Unknown flags, repeated budgets,
    /// and unparsable budgets print an error and exit with status 2.
    pub fn parse_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut scale = None;
        let mut json = false;
        for arg in args {
            if arg == "--json" {
                json = true;
            } else if arg.starts_with('-') {
                eprintln!("error: unknown flag `{arg}` (supported: --json, [insts])");
                std::process::exit(2);
            } else if scale.is_some() {
                eprintln!("error: more than one insts argument (`{arg}` is extra)");
                std::process::exit(2);
            } else {
                scale = Some(parse_insts(&arg));
            }
        }
        Self {
            scale: scale.unwrap_or(Scale::Quick),
            json,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_to_quick_without_json() {
        let a = parse(&[]);
        assert_eq!(a.scale, Scale::Quick);
        assert!(!a.json);
    }

    #[test]
    fn accepts_budget_and_json_in_either_order() {
        let a = parse(&["4000", "--json"]);
        assert_eq!(a.scale, Scale::Custom(4000));
        assert!(a.json);
        let b = parse(&["--json", "4000"]);
        assert_eq!(b.scale, Scale::Custom(4000));
        assert!(b.json);
    }
}
