//! Validates the sampled-simulation methodology: runs every workload
//! under the paper's eight configurations in both full-detail and
//! sampled mode, and reports the per-cell IPC error plus the geomean
//! absolute error and the wall-clock speedup.
//!
//! ```text
//! cargo run --release -p dgl-bench --bin sample_error [insts] [workload]
//! ```
//!
//! With a workload name, only that workload runs (the paper-matrix
//! acceptance check uses this on the longest workload). The sampling
//! interval scales with the run length so roughly 30 windows cover the
//! program regardless of scale.

use dgl_sim::{CheckpointStore, ConfigId, SamplingConfig, SimBuilder};
use dgl_workloads::{suite, Scale};
use std::time::Instant;

fn main() {
    let scale = dgl_bench::scale_from_args();
    let only = std::env::args().nth(2);
    let mut workloads = suite(scale);
    if let Some(name) = &only {
        workloads.retain(|w| w.name == name.as_str());
        assert!(!workloads.is_empty(), "unknown workload {name}");
    }
    let target = match scale {
        Scale::Custom(n) => n,
        Scale::Full => 150_000,
        Scale::Quick => 25_000,
    };
    let cfg = SamplingConfig {
        interval_insts: (target / 30).max(5_000),
        warmup_insts: 1_500,
        window_insts: 500,
        ..SamplingConfig::default()
    };
    eprintln!(
        "sampled-vs-full IPC on {} workloads x {} configs at {:?} \
         (interval {}, warmup {}, window {})...",
        workloads.len(),
        ConfigId::ALL.len(),
        scale,
        cfg.interval_insts,
        cfg.warmup_insts,
        cfg.window_insts
    );

    println!(
        "{:18} {:12} {:>9} {:>9} {:>8} {:>9}",
        "workload", "config", "full", "sampled", "err%", "speedup"
    );
    let mut log_err_sum = 0.0f64;
    let mut cells = 0usize;
    let (mut full_secs, mut sampled_secs) = (0.0f64, 0.0f64);
    // One checkpoint store across all config rows: the eight configs of
    // a workload differ only in scheme/ap, so the functional
    // fast-forward is shared instead of redone per row (results are
    // byte-identical either way).
    let store = CheckpointStore::new(256);
    for w in &workloads {
        for id in ConfigId::ALL {
            let mut b = SimBuilder::new();
            b.scheme(id.scheme()).address_prediction(id.ap());

            let t0 = Instant::now();
            let full = b.run_workload(w).expect("full run");
            let t_full = t0.elapsed().as_secs_f64();

            let t1 = Instant::now();
            let sampled = b
                .run_sampled_with_store(w, &cfg, Some(&store))
                .expect("sampled run");
            let t_sampled = t1.elapsed().as_secs_f64();

            let full_ipc = full.ipc();
            let sampled_ipc = sampled.ipc();
            let err = if full_ipc > 0.0 {
                (sampled_ipc - full_ipc) / full_ipc * 100.0
            } else {
                0.0
            };
            if full_ipc > 0.0 && sampled_ipc > 0.0 {
                log_err_sum += (sampled_ipc / full_ipc).ln().abs();
                cells += 1;
            }
            full_secs += t_full;
            sampled_secs += t_sampled;
            println!(
                "{:18} {:12} {:>9.4} {:>9.4} {:>+7.2}% {:>8.1}x",
                w.name,
                id.label(),
                full_ipc,
                sampled_ipc,
                err,
                t_full / t_sampled.max(1e-9)
            );
        }
    }
    let geomean_err = ((log_err_sum / cells.max(1) as f64).exp() - 1.0) * 100.0;
    let c = store.counters();
    println!(
        "\ngeomean |IPC error| {:.2}% over {} cells; aggregate wall-clock speedup {:.1}x \
         (full {:.2}s, sampled {:.2}s)",
        geomean_err,
        cells,
        full_secs / sampled_secs.max(1e-9),
        full_secs,
        sampled_secs
    );
    println!(
        "checkpoint store: {} hits, {} misses, {} partial hits, {} totals hits \
         ({} resident)",
        c.hits,
        c.misses,
        c.partial_hits,
        c.totals_hits,
        store.resident()
    );
}
