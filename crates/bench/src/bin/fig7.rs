//! Reproduces Figure 7: address-predictor coverage and accuracy under
//! DoM+AP (the representative configuration, as in the paper).

use dgl_sim::figure7;

fn main() {
    let scale = dgl_bench::scale_from_args();
    eprintln!("running DoM+AP x 20 workloads at {:?}...", scale);
    let fig = figure7(scale).expect("simulation");
    println!("{}", fig.render());
}
