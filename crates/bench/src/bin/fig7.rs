//! Reproduces Figure 7: address-predictor coverage and accuracy under
//! DoM+AP (the representative configuration, as in the paper). Pass
//! `--json` for the machine-readable form.

use dgl_bench::BenchArgs;
use dgl_sim::figure7;

fn main() {
    let args = BenchArgs::parse_env();
    eprintln!("running DoM+AP x 20 workloads at {:?}...", args.scale);
    let fig = figure7(args.scale).expect("simulation");
    if args.json {
        println!("{}", fig.to_json().to_string_pretty());
    } else {
        println!("{}", fig.render());
    }
}
