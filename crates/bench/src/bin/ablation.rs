//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Predictor capacity** — Table 1's 1024-entry/8-way structure vs.
//!    smaller and larger tables (does the "free" prefetcher-sized
//!    predictor suffice?).
//! 2. **Confidence threshold** — eagerness vs. accuracy of doppelganger
//!    issue.
//! 3. **DRAM bandwidth** — how the substituted bandwidth model shifts
//!    the schemes (the paper's testbed does not publish one).
//! 4. **In-flight instance compensation** — the deep-window correction
//!    this reproduction adds on top of the paper's plain stride
//!    predictor (set the ROB small to emulate "no compensation
//!    needed").
//!
//! ```sh
//! cargo run --release -p dgl-bench --bin ablation [insts]
//! ```

use dgl_core::SchemeKind;
use dgl_pipeline::CoreConfig;
use dgl_sim::SimBuilder;
use dgl_stats::{geomean, Align, Table};
use dgl_workloads::{suite, Scale};

/// Geomean normalized IPC of `scheme(+AP per flag)` over the suite with
/// a config-editing hook; workloads run in parallel.
fn gmean_with(
    scale: Scale,
    scheme: SchemeKind,
    ap: bool,
    edit: &(dyn Fn(&mut CoreConfig) + Sync),
) -> f64 {
    let workloads = suite(scale);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(workloads.len());
    let normalized: Vec<f64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in workloads.chunks(workloads.len().div_ceil(threads)) {
            handles.push(scope.spawn(move || {
                chunk
                    .iter()
                    .map(|w| {
                        let mut cfg = CoreConfig::default();
                        edit(&mut cfg);
                        let mut base_b = SimBuilder::new();
                        base_b.config(cfg);
                        let base = base_b.run_workload(w).expect("baseline").ipc();
                        let mut b = SimBuilder::new();
                        b.scheme(scheme).address_prediction(ap).config(cfg);
                        let ipc = b.run_workload(w).expect("scheme").ipc();
                        if base > 0.0 {
                            ipc / base
                        } else {
                            0.0
                        }
                    })
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker"))
            .collect()
    });
    geomean(&normalized)
}

fn main() {
    let scale = dgl_bench::scale_from_args();
    eprintln!("ablations at {scale:?} (this runs many full matrices; be patient)");

    // 1. Predictor capacity.
    let mut t = Table::new(vec![
        "predictor entries".into(),
        "nda-p+ap".into(),
        "stt+ap".into(),
        "dom+ap".into(),
    ]);
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    for entries in [64usize, 256, 1024, 4096] {
        let edit = move |cfg: &mut CoreConfig| {
            cfg.doppelganger.table.entries = entries;
            cfg.doppelganger.table.ways = 8.min(entries);
        };
        let vals: Vec<f64> = [SchemeKind::NdaP, SchemeKind::Stt, SchemeKind::DoM]
            .iter()
            .map(|&s| gmean_with(scale, s, true, &edit))
            .collect();
        t.row_f64(&format!("{entries}"), &vals, 3);
    }
    println!("Ablation 1 — shared stride-table capacity (geomean normalized IPC)\n{t}");

    // 2. Confidence threshold.
    let mut t = Table::new(vec![
        "confidence threshold".into(),
        "dom+ap gmean".into(),
        "dom+ap coverage".into(),
        "dom+ap accuracy".into(),
    ]);
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    for thr in [1u8, 2, 4, 6] {
        let edit = move |cfg: &mut CoreConfig| {
            cfg.doppelganger.table.confidence_threshold = thr;
        };
        let g = gmean_with(scale, SchemeKind::DoM, true, &edit);
        // Coverage/accuracy sampled on one representative workload.
        let w = dgl_workloads::by_name("xalancbmk_like", scale).expect("workload");
        let mut cfg = CoreConfig::default();
        edit(&mut cfg);
        let mut b = SimBuilder::new();
        b.scheme(SchemeKind::DoM)
            .address_prediction(true)
            .config(cfg);
        let rep = b.run_workload(&w).expect("run");
        t.row(vec![
            format!("{thr}"),
            format!("{g:.3}"),
            format!("{:.1}%", 100.0 * rep.ap.coverage()),
            format!("{:.1}%", 100.0 * rep.ap.accuracy()),
        ]);
    }
    println!("Ablation 2 — confidence threshold (xalancbmk_like cov/acc)\n{t}");

    // 3. DRAM bandwidth.
    let mut t = Table::new(vec![
        "cycles per DRAM line".into(),
        "dom".into(),
        "dom+ap".into(),
        "recovered".into(),
    ]);
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    for interval in [1u64, 4, 8, 16] {
        let edit = move |cfg: &mut CoreConfig| {
            cfg.hierarchy.dram_service_interval = interval;
        };
        let without = gmean_with(scale, SchemeKind::DoM, false, &edit);
        let with = gmean_with(scale, SchemeKind::DoM, true, &edit);
        let rec = if without < 1.0 {
            100.0 * (with - without) / (1.0 - without)
        } else {
            0.0
        };
        t.row(vec![
            format!("{interval}"),
            format!("{without:.3}"),
            format!("{with:.3}"),
            format!("{rec:.0}%"),
        ]);
    }
    println!("Ablation 3 — DRAM bandwidth model\n{t}");

    // 4. In-flight instance compensation (EXPERIMENTS.md deviation 1):
    // the paper's literal `last + stride` rule vs. the deep-window
    // correction, across window depths.
    let mut t = Table::new(vec![
        "rob entries / rule".into(),
        "stt+ap gmean".into(),
        "libquantum accuracy".into(),
        "libquantum stt+ap".into(),
    ]);
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    for (rob, comp) in [(64usize, true), (352, true), (64, false), (352, false)] {
        let edit = move |cfg: &mut CoreConfig| {
            cfg.rob_entries = rob;
            cfg.iq_entries = cfg.iq_entries.min(rob);
            cfg.lq_entries = cfg.lq_entries.min(rob / 2);
            cfg.sq_entries = cfg.sq_entries.min(rob / 2);
            cfg.doppelganger.inflight_compensation = comp;
        };
        let g = gmean_with(scale, SchemeKind::Stt, true, &edit);
        let w = dgl_workloads::by_name("libquantum_like", scale).expect("workload");
        let mut cfg = CoreConfig::default();
        edit(&mut cfg);
        let mut base_b = SimBuilder::new();
        base_b.config(cfg);
        let base = base_b.run_workload(&w).expect("base").ipc();
        let mut b = SimBuilder::new();
        b.scheme(SchemeKind::Stt)
            .address_prediction(true)
            .config(cfg);
        let rep = b.run_workload(&w).expect("run");
        t.row(vec![
            format!("{rob} / {}", if comp { "compensated" } else { "plain" }),
            format!("{g:.3}"),
            format!("{:.1}%", 100.0 * rep.ap.accuracy()),
            format!("{:.3}", rep.ipc() / base),
        ]);
    }
    println!("Ablation 4 — in-flight compensation vs the paper's plain rule\n{t}");

    // 5. Update policy: plain stride vs two-delta (the paper's
    // "more advanced address predictor" future-work direction).
    let mut t = Table::new(vec![
        "update policy".into(),
        "dom+ap gmean".into(),
        "xalancbmk acc".into(),
        "xalancbmk dom+ap".into(),
    ]);
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    for two_delta in [false, true] {
        let edit = move |cfg: &mut CoreConfig| {
            cfg.doppelganger.table.two_delta = two_delta;
        };
        let g = gmean_with(scale, SchemeKind::DoM, true, &edit);
        let w = dgl_workloads::by_name("xalancbmk_like", scale).expect("workload");
        let mut cfg = CoreConfig::default();
        edit(&mut cfg);
        let mut base_b = SimBuilder::new();
        base_b.config(cfg);
        let base = base_b.run_workload(&w).expect("base").ipc();
        let mut b = SimBuilder::new();
        b.scheme(SchemeKind::DoM)
            .address_prediction(true)
            .config(cfg);
        let rep = b.run_workload(&w).expect("run");
        t.row(vec![
            if two_delta { "two-delta" } else { "stride" }.into(),
            format!("{g:.3}"),
            format!("{:.1}%", 100.0 * rep.ap.accuracy()),
            format!("{:.3}", rep.ipc() / base),
        ]);
    }
    println!("Ablation 5 — stride-table update policy (future work, paper §9)\n{t}");

    // 6. Cache replacement policy (the paper's gem5 uses LRU; DoM's
    // delayed replacement update is recency-defined, so alternatives
    // shift DoM more than the others).
    let mut t = Table::new(vec![
        "replacement".into(),
        "baseline ipc gmean".into(),
        "dom".into(),
        "dom+ap".into(),
    ]);
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    for policy in [
        dgl_mem::Replacement::Lru,
        dgl_mem::Replacement::Fifo,
        dgl_mem::Replacement::Random,
    ] {
        let edit = move |cfg: &mut CoreConfig| {
            cfg.hierarchy.l1.replacement = policy;
            cfg.hierarchy.l2.replacement = policy;
            cfg.hierarchy.l3.replacement = policy;
        };
        let dom = gmean_with(scale, SchemeKind::DoM, false, &edit);
        let dom_ap = gmean_with(scale, SchemeKind::DoM, true, &edit);
        // Absolute baseline IPC geomean to show the policy's raw cost.
        let mut cfg = CoreConfig::default();
        edit(&mut cfg);
        let ipcs: Vec<f64> = suite(scale)
            .iter()
            .map(|w| {
                let mut b = SimBuilder::new();
                b.config(cfg);
                b.run_workload(w).expect("baseline").ipc()
            })
            .collect();
        t.row(vec![
            format!("{policy:?}"),
            format!("{:.3}", geomean(&ipcs)),
            format!("{dom:.3}"),
            format!("{dom_ap:.3}"),
        ]);
    }
    println!("Ablation 6 — cache replacement policy\n{t}");
}
