//! Reproduces Figure 6: per-benchmark normalized IPC of the six secure
//! configurations, with the GMEAN row. Pass `--json` for the
//! machine-readable form.

use dgl_bench::BenchArgs;
use dgl_sim::figure6;

fn main() {
    let args = BenchArgs::parse_env();
    eprintln!(
        "running 8 configurations x 20 workloads at {:?}...",
        args.scale
    );
    let fig = figure6(args.scale).expect("simulation");
    if args.json {
        println!("{}", fig.to_json().to_string_pretty());
    } else {
        println!("{}", fig.render());
    }
}
