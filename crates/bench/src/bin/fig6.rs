//! Reproduces Figure 6: per-benchmark normalized IPC of the six secure
//! configurations, with the GMEAN row.

use dgl_sim::figure6;

fn main() {
    let scale = dgl_bench::scale_from_args();
    eprintln!("running 8 configurations x 20 workloads at {:?}...", scale);
    let fig = figure6(scale).expect("simulation");
    println!("{}", fig.render());
}
