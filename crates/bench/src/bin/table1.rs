//! Reproduces Table 1: the system configuration, printed from the live
//! defaults so the table can never drift from the code.

use dgl_pipeline::CoreConfig;
use dgl_stats::Table;

fn main() {
    let c = CoreConfig::default();
    let h = c.hierarchy;
    let d = c.doppelganger;

    let mut t = Table::new(vec![
        "parameter".into(),
        "value".into(),
        "paper (Table 1)".into(),
    ]);
    let mut row = |k: &str, v: String, p: &str| {
        t.row(vec![k.into(), v, p.into()]);
    };
    row(
        "Decode width",
        format!("{} instructions", c.decode_width),
        "5 instructions",
    );
    row(
        "Issue / Commit width",
        format!("{} instructions", c.issue_width),
        "8 instructions",
    );
    row(
        "Instruction queue",
        format!("{} entries", c.iq_entries),
        "160 entries",
    );
    row(
        "Reorder buffer",
        format!("{} entries", c.rob_entries),
        "352 entries",
    );
    row(
        "Load queue",
        format!("{} entries", c.lq_entries),
        "128 entries",
    );
    row(
        "Store queue/buffer",
        format!("{} entries", c.sq_entries),
        "72 entries",
    );
    row(
        "Address predictor/prefetcher",
        format!(
            "{} entries, {}-way, {:.1} KiB",
            d.table.entries,
            d.table.ways,
            d.table.storage_bits() as f64 / 8.0 / 1024.0
        ),
        "1024 entries, 8-way, 13.5 KiB",
    );
    row(
        "L1 D cache",
        format!("{} KiB, {} ways", h.l1.size_bytes / 1024, h.l1.ways),
        "48 KiB, 12 ways",
    );
    row(
        "  access latency",
        format!("{} cycles roundtrip", h.l1.latency),
        "5 cycles",
    );
    row("  MSHRs", format!("{}", h.mshrs), "16");
    row(
        "Private L2 cache",
        format!(
            "{} MiB, {} ways",
            h.l2.size_bytes / (1024 * 1024),
            h.l2.ways
        ),
        "2 MiB, 8 ways",
    );
    row(
        "  access latency",
        format!("{} cycles roundtrip", h.l2.latency),
        "15 cycles",
    );
    row(
        "Shared L3 cache",
        format!(
            "{} MiB, {} ways",
            h.l3.size_bytes / (1024 * 1024),
            h.l3.ways
        ),
        "16 MiB, 16 ways",
    );
    row(
        "  access latency",
        format!("{} cycles roundtrip", h.l3.latency),
        "40 cycles",
    );
    row(
        "Memory access time",
        format!(
            "{} cycles (~13.5 ns at the documented 2.5 GHz)",
            h.mem_latency
        ),
        "13.5 ns",
    );
    row(
        "DRAM bandwidth model",
        format!("1 line / {} cycles", h.dram_service_interval),
        "(substitution; see DESIGN.md)",
    );
    println!("Table 1 — system configuration\n{t}");
}
