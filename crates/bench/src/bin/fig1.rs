//! Reproduces Figure 1: headline geomean normalized IPC of NDA-P, STT,
//! and DoM with and without doppelganger loads, plus the unsafe
//! baseline + AP sanity result (§7).

use dgl_sim::figure1;

fn main() {
    let scale = dgl_bench::scale_from_args();
    eprintln!("running 8 configurations x 20 workloads at {:?}...", scale);
    let fig = figure1(scale).expect("simulation");
    println!("{}", fig.render());
}
