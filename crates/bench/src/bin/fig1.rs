//! Reproduces Figure 1: headline geomean normalized IPC of NDA-P, STT,
//! and DoM with and without doppelganger loads, plus the unsafe
//! baseline + AP sanity result (§7). Pass `--json` for the
//! machine-readable form.

use dgl_bench::BenchArgs;
use dgl_sim::figure1;

fn main() {
    let args = BenchArgs::parse_env();
    eprintln!(
        "running 8 configurations x 20 workloads at {:?}...",
        args.scale
    );
    let fig = figure1(args.scale).expect("simulation");
    if args.json {
        println!("{}", fig.to_json().to_string_pretty());
    } else {
        println!("{}", fig.render());
    }
}
