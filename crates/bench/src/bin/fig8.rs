//! Reproduces Figure 8: L1 and L2 access counts of each +AP
//! configuration, normalized to the same scheme without AP.

use dgl_sim::figure8;

fn main() {
    let scale = dgl_bench::scale_from_args();
    eprintln!("running 8 configurations x 20 workloads at {:?}...", scale);
    let fig = figure8(scale).expect("simulation");
    println!("{}", fig.render());
}
