//! Reproduces the paper's §2.3 motivation: DoM with **value prediction**
//! (the prior approach) recovers far less of DoM's slowdown than DoM
//! with **address prediction** (doppelganger loads), because values are
//! harder to predict than addresses (§8, [32, 43]) and validation is
//! effectively in-order.
//!
//! ```sh
//! cargo run --release -p dgl-bench --bin motivation_vp [insts]
//! ```

use dgl_core::SchemeKind;
use dgl_sim::SimBuilder;
use dgl_stats::{geomean, Align, Table};
use dgl_workloads::suite;

fn main() {
    let scale = dgl_bench::scale_from_args();
    eprintln!("running baseline/DoM/DoM+VP/DoM+AP x 20 workloads at {scale:?}...");
    let workloads = suite(scale);

    let mut t = Table::new(vec![
        "benchmark".into(),
        "dom".into(),
        "dom+vp".into(),
        "dom+ap".into(),
        "vp cov".into(),
        "vp acc".into(),
        "vp squashes".into(),
    ]);
    for c in 1..7 {
        t.align(c, Align::Right);
    }

    let mut dom_all = Vec::new();
    let mut vp_all = Vec::new();
    let mut ap_all = Vec::new();
    for w in &workloads {
        let base = SimBuilder::new().run_workload(w).expect("baseline").ipc();
        let norm = |ipc: f64| if base > 0.0 { ipc / base } else { 0.0 };

        let mut b = SimBuilder::new();
        b.scheme(SchemeKind::DoM);
        let dom = norm(b.run_workload(w).expect("dom").ipc());

        let mut b = SimBuilder::new();
        b.scheme(SchemeKind::DoM).value_prediction(true);
        let vp_rep = b.run_workload(w).expect("dom+vp");
        let vp = norm(vp_rep.ipc());

        let mut b = SimBuilder::new();
        b.scheme(SchemeKind::DoM).address_prediction(true);
        let ap = norm(b.run_workload(w).expect("dom+ap").ipc());

        dom_all.push(dom);
        vp_all.push(vp);
        ap_all.push(ap);
        t.row(vec![
            w.name.to_owned(),
            format!("{dom:.3}"),
            format!("{vp:.3}"),
            format!("{ap:.3}"),
            format!("{:.0}%", 100.0 * vp_rep.vp.coverage()),
            format!("{:.0}%", 100.0 * vp_rep.vp.accuracy()),
            format!("{}", vp_rep.stats.vp_squashes),
        ]);
    }
    let g = |v: &[f64]| geomean(v);
    t.row(vec![
        "GMEAN".into(),
        format!("{:.3}", g(&dom_all)),
        format!("{:.3}", g(&vp_all)),
        format!("{:.3}", g(&ap_all)),
        String::new(),
        String::new(),
        String::new(),
    ]);
    println!("§2.3 motivation — DoM optimized with value vs address prediction\n{t}");
    println!(
        "recovery of DoM's slowdown: VP {:.0}%, AP {:.0}% (the paper's point: \
         VP \"did not yield significant improvement in MLP\")",
        100.0 * (g(&vp_all) - g(&dom_all)) / (1.0 - g(&dom_all)),
        100.0 * (g(&ap_all) - g(&dom_all)) / (1.0 - g(&dom_all)),
    );
}
