//! NDA strategy comparison (extension beyond the paper's evaluation):
//! strict data propagation (NDA-S) vs. permissive propagation (NDA-P)
//! vs. NDA-P with doppelganger loads. §2.1 notes that NDA blocks ILP as
//! well as MLP; NDA-S makes that cost explicit and shows why NDA-P is
//! the variant worth optimizing — and that NDA-P+AP beats even that.
//!
//! ```sh
//! cargo run --release -p dgl-bench --bin nda_variants [insts]
//! ```

use dgl_core::SchemeKind;
use dgl_sim::SimBuilder;
use dgl_stats::{geomean, Align, Table};
use dgl_workloads::suite;

fn main() {
    let scale = dgl_bench::scale_from_args();
    eprintln!("running NDA variants x 20 workloads at {scale:?}...");
    let workloads = suite(scale);

    let mut t = Table::new(vec![
        "benchmark".into(),
        "nda-s".into(),
        "nda-p".into(),
        "nda-p+ap".into(),
    ]);
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    let mut cols: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for w in &workloads {
        let base = SimBuilder::new().run_workload(w).expect("baseline").ipc();
        let norm = |ipc: f64| if base > 0.0 { ipc / base } else { 0.0 };
        let mut values = [0.0f64; 3];
        for (i, (scheme, ap)) in [
            (SchemeKind::NdaS, false),
            (SchemeKind::NdaP, false),
            (SchemeKind::NdaP, true),
        ]
        .iter()
        .enumerate()
        {
            let mut b = SimBuilder::new();
            b.scheme(*scheme).address_prediction(*ap);
            values[i] = norm(b.run_workload(w).expect("variant").ipc());
            cols[i].push(values[i]);
        }
        t.row_f64(w.name, &values, 3);
    }
    t.row_f64(
        "GMEAN",
        &[geomean(&cols[0]), geomean(&cols[1]), geomean(&cols[2])],
        3,
    );
    println!("NDA strategies — geomean normalized IPC (baseline = 1.0)\n{t}");
    println!(
        "NDA-S pays for blocking ILP as well as MLP; the paper optimizes \
         NDA-P, and NDA-P+AP ({:.3}) recovers most of what security cost.",
        geomean(&cols[2])
    );
}
