//! NDA strategy comparison (extension beyond the paper's evaluation):
//! every scheme in the registry's `nda` family, with and without
//! doppelganger loads. §2.1 notes that NDA blocks ILP as well as MLP;
//! NDA-S makes that cost explicit, NDA-P is the variant the paper
//! optimizes, and NDA-P-eager shows how much of the remaining gap is
//! branch-resolution delay. The `+ap` columns add address prediction.
//!
//! The variant list comes straight from [`dgl_core::REGISTRY`]: adding
//! a new `nda`-family scheme there adds its columns here with no edits.
//!
//! ```sh
//! cargo run --release -p dgl-bench --bin nda_variants [insts]
//! ```

use dgl_core::REGISTRY;
use dgl_sim::SimBuilder;
use dgl_stats::{geomean, Align, Table};
use dgl_workloads::suite;

fn main() {
    let scale = dgl_bench::scale_from_args();
    let variants: Vec<_> = REGISTRY
        .iter()
        .filter(|e| e.family == "nda")
        .flat_map(|e| [(e, false), (e, true)])
        .collect();
    eprintln!(
        "running {} NDA variants x 20 workloads at {scale:?}...",
        variants.len()
    );
    let workloads = suite(scale);

    let mut header = vec!["benchmark".to_owned()];
    header.extend(variants.iter().map(|(e, ap)| {
        if *ap {
            format!("{}+ap", e.name)
        } else {
            e.name.to_owned()
        }
    }));
    let mut t = Table::new(header);
    for c in 1..=variants.len() {
        t.align(c, Align::Right);
    }
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for w in &workloads {
        let base = SimBuilder::new().run_workload(w).expect("baseline").ipc();
        let norm = |ipc: f64| if base > 0.0 { ipc / base } else { 0.0 };
        let mut values = vec![0.0f64; variants.len()];
        for (i, (entry, ap)) in variants.iter().enumerate() {
            let mut b = SimBuilder::new();
            b.scheme(entry.kind).address_prediction(*ap);
            values[i] = norm(b.run_workload(w).expect("variant").ipc());
            cols[i].push(values[i]);
        }
        t.row_f64(w.name, &values, 3);
    }
    let gmeans: Vec<f64> = cols.iter().map(|c| geomean(c)).collect();
    t.row_f64("GMEAN", &gmeans, 3);
    println!("NDA strategies — geomean normalized IPC (baseline = 1.0)\n{t}");
    println!(
        "NDA-S pays for blocking ILP as well as MLP; the paper optimizes \
         NDA-P, and doppelganger loads recover most of that security cost."
    );
}
