//! Bench trajectory records: one schema-versioned JSON document per
//! benchmarking run, written as `BENCH_<seq>.json` at the repo root so
//! a sequence of commits leaves a machine-readable performance
//! trajectory behind.
//!
//! A record captures the quick evaluation matrix (every workload ×
//! every scheme±AP config) together with the figure-1/6/7 projections
//! built from it — per-(workload, config) simulated IPC, geomean
//! normalized IPC per scheme pair, and predictor coverage/accuracy —
//! plus workload fingerprints so two records are known to have
//! simulated the same programs.
//!
//! Everything host-dependent (git SHA + working-tree dirtiness,
//! wall-clock, host KIPS, the per-stage self-profile) lives under a
//! single top-level `"host"` object. [`dgl_sim::compare()`] treats `host` subtrees as report-only,
//! so comparing two records gates exclusively on simulated results.

use dgl_pipeline::core_prof_registry;
use dgl_pipeline::RunError;
use dgl_sim::experiments::{
    figure1_from, figure6_from, figure7_from, ConfigId, Evaluation, Figure1, Figure6, Figure7,
};
use dgl_sim::workload_fingerprint;
use dgl_stats::{Json, ProfReport};
use dgl_workloads::{suite, Scale};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema identifier stamped into every trajectory record.
pub const TRAJECTORY_SCHEMA: &str = "dgl-bench-trajectory";

/// Current trajectory schema version.
pub const TRAJECTORY_VERSION: u64 = 1;

/// One benchmarking run: the full evaluation matrix, its figure
/// projections, and the host-side measurements taken along the way.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// The full (workload × config) matrix.
    pub eval: Evaluation,
    /// Geomean normalized-IPC summary per scheme pair.
    pub figure1: Figure1,
    /// Per-benchmark normalized IPC.
    pub figure6: Figure6,
    /// Predictor coverage/accuracy.
    pub figure7: Figure7,
    /// Host time by pipeline stage, accumulated across every core of
    /// the matrix.
    pub prof: ProfReport,
    /// Wall-clock time of the matrix run.
    pub wall: Duration,
}

impl Trajectory {
    /// Runs the quick evaluation matrix (all eight configs) once with
    /// self-profiling enabled and derives every figure projection from
    /// that single run.
    ///
    /// # Errors
    ///
    /// When no matrix row could be measured ([`Evaluation::run_with_prof`]).
    pub fn collect(scale: Scale) -> Result<Self, RunError> {
        let reg = Arc::new(core_prof_registry());
        let start = Instant::now();
        let eval = Evaluation::run_with_prof(scale, &ConfigId::ALL, Some(Arc::clone(&reg)))?;
        let wall = start.elapsed();
        Ok(Self {
            figure1: figure1_from(&eval),
            figure6: figure6_from(&eval),
            figure7: figure7_from(&eval),
            prof: reg.snapshot(),
            eval,
            wall,
        })
    }

    /// Total committed instructions across every (workload, config)
    /// cell of the matrix.
    pub fn total_committed(&self) -> u64 {
        self.eval
            .rows
            .iter()
            .flat_map(|r| r.cells.values())
            .map(|c| c.committed)
            .sum()
    }

    /// Host throughput in thousands of committed instructions per
    /// wall-clock second, clamped against degenerate wall-clocks the
    /// same way the per-run KIPS metric is.
    pub fn kips(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        let secs = self.wall.as_secs_f64().max(1e-3);
        self.total_committed() as f64 / 1000.0 / secs
    }

    /// Builds the schema-versioned record. `git_sha` identifies the
    /// commit benchmarked (use [`git_head_sha`]) and `git_dirty`
    /// whether the working tree carried uncommitted changes on top of
    /// it (use [`git_tree_dirty`]) — without the flag, a record taken
    /// from a dirty tree would silently attribute its numbers to a
    /// commit that never produced them. Both land under `host`, so
    /// they never gate a comparison.
    pub fn to_json(&self, git_sha: &str, git_dirty: bool) -> Json {
        let mut workloads = Json::array();
        for w in suite(self.eval.scale) {
            workloads = workloads.push(
                Json::object()
                    .field("name", Json::str(w.name))
                    .field("suite", Json::str(w.suite))
                    .field("fingerprint", Json::uint(workload_fingerprint(&w))),
            );
        }
        Json::object()
            .field("schema", Json::str(TRAJECTORY_SCHEMA))
            .field("version", Json::uint(TRAJECTORY_VERSION))
            .field("scale_insts", Json::uint(self.eval.scale.target_insts()))
            .field("workloads", workloads)
            .field("figure1", self.figure1.to_json())
            .field("figure6", self.figure6.to_json())
            .field("figure7", self.figure7.to_json())
            .field("matrix", self.eval.to_json())
            .field(
                "host",
                Json::object()
                    .field("git_sha", Json::str(git_sha))
                    .field("git_dirty", Json::Bool(git_dirty))
                    .field("wall_ms", Json::num(self.wall.as_secs_f64() * 1e3))
                    .field("kips", Json::num(self.kips()))
                    .field("prof", self.prof.to_json()),
            )
    }
}

/// Checks that `doc` is a trajectory record this version of the tool
/// can read.
///
/// # Errors
///
/// Names the offending field when the schema identifier or version
/// does not match.
pub fn validate(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(TRAJECTORY_SCHEMA) => {}
        other => {
            return Err(format!(
                "not a {TRAJECTORY_SCHEMA} document (schema = {other:?})"
            ))
        }
    }
    match doc.get("version").and_then(Json::as_u64) {
        Some(TRAJECTORY_VERSION) => Ok(()),
        other => Err(format!(
            "unsupported {TRAJECTORY_SCHEMA} version {other:?} (tool reads v{TRAJECTORY_VERSION})"
        )),
    }
}

/// The sequence number the next record in `dir` should use: one past
/// the highest existing `BENCH_<n>.json`, starting at 1.
pub fn next_seq(dir: &Path) -> u64 {
    let mut max = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(n) = entry.file_name().to_str().and_then(parse_seq) {
                max = max.max(n);
            }
        }
    }
    max + 1
}

fn parse_seq(name: &str) -> Option<u64> {
    name.strip_prefix("BENCH_")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

/// Writes `doc` as the next `BENCH_<seq>.json` in `dir` (created if
/// absent) and returns the path written.
///
/// # Errors
///
/// Propagates the I/O error when the directory or file cannot be
/// written.
pub fn write_record(dir: &Path, doc: &Json) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{}.json", next_seq(dir)));
    std::fs::write(&path, doc.to_string_pretty() + "\n")?;
    Ok(path)
}

/// The current git HEAD SHA of the working directory, or `"unknown"`
/// when git is unavailable (e.g. running from an exported tarball).
pub fn git_head_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Whether the working directory carries uncommitted changes (staged,
/// unstaged, or untracked) on top of [`git_head_sha`]. `false` when
/// git is unavailable, matching the `"unknown"` SHA fallback.
pub fn git_tree_dirty() -> bool {
    std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_parsing_accepts_only_bench_records() {
        assert_eq!(parse_seq("BENCH_1.json"), Some(1));
        assert_eq!(parse_seq("BENCH_42.json"), Some(42));
        assert_eq!(parse_seq("BENCH_.json"), None);
        assert_eq!(parse_seq("BENCH_7.json.bak"), None);
        assert_eq!(parse_seq("bench_7.json"), None);
        assert_eq!(parse_seq("MANIFEST_7.json"), None);
    }

    #[test]
    fn next_seq_scans_the_directory() {
        let dir = std::env::temp_dir().join(format!("dgl-traj-seq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_seq(&dir), 1);
        std::fs::write(dir.join("BENCH_1.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_3.json"), "{}").unwrap();
        std::fs::write(dir.join("notes.txt"), "").unwrap();
        assert_eq!(next_seq(&dir), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_validates_and_round_trips() {
        let traj = Trajectory::collect(Scale::Custom(1_000)).expect("matrix");
        assert!(traj.eval.failures.is_empty(), "{:?}", traj.eval.failures);
        let doc = traj.to_json("deadbeef", true);
        validate(&doc).expect("fresh record validates");
        assert_eq!(doc.get("scale_insts").and_then(Json::as_u64), Some(1_000));
        let host = doc.get("host").expect("host section");
        assert_eq!(host.get("git_sha").and_then(Json::as_str), Some("deadbeef"));
        assert_eq!(host.get("git_dirty"), Some(&Json::Bool(true)));
        assert!(host.get("prof").is_some());
        assert!(doc.get("matrix").is_some());
        assert!(doc.get("figure6").is_some());
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);

        // Wrong schema / version are named in the error.
        let bogus = Json::object().field("schema", Json::str("nope"));
        assert!(validate(&bogus).unwrap_err().contains("nope"));
        let old = Json::object()
            .field("schema", Json::str(TRAJECTORY_SCHEMA))
            .field("version", Json::uint(99));
        assert!(validate(&old).unwrap_err().contains("99"));
    }
}
