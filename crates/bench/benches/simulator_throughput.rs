//! Raw simulator throughput per scheme: how many simulated instructions
//! per second the out-of-order model sustains under each speculation
//! policy, with and without doppelganger loads. Useful for spotting
//! performance regressions in the simulator itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dgl_core::SchemeKind;
use dgl_sim::SimBuilder;
use dgl_workloads::{by_name, Scale};

const INSTS: u64 = 10_000;

fn bench_schemes(c: &mut Criterion) {
    let workload = by_name("gcc_like", Scale::Custom(INSTS)).expect("workload");
    let mut g = c.benchmark_group("simulator/scheme_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(INSTS));
    for scheme in SchemeKind::ALL {
        for ap in [false, true] {
            let label = format!("{}{}", scheme.name(), if ap { "+ap" } else { "" });
            g.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(scheme, ap),
                |b, &(s, a)| {
                    b.iter(|| {
                        let mut builder = SimBuilder::new();
                        builder.scheme(s).address_prediction(a);
                        let report = builder.run_workload(&workload).expect("run");
                        std::hint::black_box(report.cycles)
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_workload_classes(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/workload_classes");
    g.sample_size(10);
    g.throughput(Throughput::Elements(INSTS));
    for name in ["libquantum_like", "mcf_like", "exchange2_s_like"] {
        let workload = by_name(name, Scale::Custom(INSTS)).expect("workload");
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut builder = SimBuilder::new();
                builder.scheme(SchemeKind::DoM).address_prediction(true);
                let report = builder.run_workload(&workload).expect("run");
                std::hint::black_box(report.cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schemes, bench_workload_classes);
criterion_main!(benches);
