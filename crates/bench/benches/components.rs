//! Microbenchmarks of the individual substrate components: how fast are
//! the structures the simulator leans on every cycle?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dgl_core::{AddressPredictor, DoppelgangerConfig};
use dgl_isa::{Emulator, ProgramBuilder, Reg, SparseMemory};
use dgl_mem::{Cache, HierarchyConfig, MemRequest, MemorySystem};
use dgl_predictor::{BranchPredictor, BranchPredictorConfig, StrideTable, StrideTableConfig};

const OPS: u64 = 10_000;

fn bench_stride_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/stride_table");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("train_predict_mixed_pcs", |b| {
        b.iter(|| {
            let mut t = StrideTable::new(StrideTableConfig::default());
            for i in 0..OPS {
                let pc = (i % 64) * 4;
                t.train(pc, 0x1000 + i * 8);
                std::hint::black_box(t.predict_current(pc));
            }
            t.occupancy()
        })
    });
    g.finish();
}

fn bench_address_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/address_predictor");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("dispatch_commit_cycle", |b| {
        b.iter(|| {
            let mut ap = AddressPredictor::new(DoppelgangerConfig::default());
            for i in 0..OPS {
                let pc = (i % 32) * 4;
                std::hint::black_box(ap.predict_at_decode(pc));
                ap.train_at_commit(pc, 0x4000 + i * 16);
            }
            ap.stats().predictions_issued
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/cache");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("l1_lookup_fill_mix", |b| {
        b.iter(|| {
            let mut cache = Cache::new(HierarchyConfig::default().l1);
            for i in 0..OPS {
                let addr = (i * 67) % 0x40000;
                if !cache.lookup(addr, true) {
                    cache.fill(addr);
                }
            }
            cache.occupancy()
        })
    });
    g.finish();
}

fn bench_memory_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/memory_system");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("request_advance_stream", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::new(HierarchyConfig::default());
            let mut served = 0u64;
            let mut now = 0u64;
            for i in 0..OPS {
                let _ = mem.request(MemRequest::load(i * 64), now);
                served += mem.advance(now).len() as u64;
                now += 1;
            }
            for c in now..now + 200 {
                served += mem.advance(c).len() as u64;
            }
            served
        })
    });
    g.finish();
}

fn bench_branch_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/branch_predictor");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("predict_train_loop", |b| {
        b.iter(|| {
            let mut bp = BranchPredictor::new(BranchPredictorConfig::default());
            for i in 0..OPS {
                let pc = (i % 128) * 4;
                let p = bp.predict(pc);
                let taken = i % 3 != 0;
                bp.restore_history(p.history_checkpoint, taken);
                bp.train(pc, taken, Some(7));
            }
            bp.stats().0
        })
    });
    g.finish();
}

fn bench_emulator(c: &mut Criterion) {
    let r = Reg::new;
    let mut b = ProgramBuilder::new("emu_bench");
    b.imm(r(1), 0)
        .imm(r(2), (OPS / 4) as i64)
        .label("top")
        .add(r(1), r(1), r(2))
        .subi(r(2), r(2), 1)
        .bne(r(2), Reg::ZERO, "top")
        .halt();
    let p = b.build().unwrap();
    let mut g = c.benchmark_group("components/emulator");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("golden_model_loop", |bch| {
        bch.iter(|| {
            let mut emu = Emulator::new(&p, SparseMemory::new());
            emu.run(10_000_000).unwrap().instructions
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_stride_table,
    bench_address_predictor,
    bench_cache,
    bench_memory_system,
    bench_branch_predictor,
    bench_emulator
);
criterion_main!(benches);
