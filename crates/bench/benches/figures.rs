//! Criterion benches that drive the figure-regeneration pipelines at a
//! reduced instruction budget. These exist so `cargo bench` exercises
//! exactly the code paths the EXPERIMENTS.md figures use; the report
//! binaries (`fig1`, `fig6`, ...) produce the actual tables.

use criterion::{criterion_group, criterion_main, Criterion};
use dgl_sim::experiments::{ConfigId, Evaluation};
use dgl_sim::figure7;
use dgl_workloads::Scale;

/// Small budget: benches measure harness throughput, not paper numbers.
const BENCH_SCALE: Scale = Scale::Custom(1_500);

fn bench_fig1_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig1_matrix");
    g.sample_size(10);
    g.bench_function("all8_configs_20_workloads", |b| {
        b.iter(|| {
            let eval = Evaluation::run(BENCH_SCALE, &ConfigId::ALL).expect("matrix");
            std::hint::black_box(eval.gmean_normalized(ConfigId::DomAp))
        })
    });
    g.finish();
}

fn bench_fig7_coverage(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig7_coverage");
    g.sample_size(10);
    g.bench_function("dom_ap_20_workloads", |b| {
        b.iter(|| {
            let f = figure7(BENCH_SCALE).expect("fig7");
            std::hint::black_box(f.gmean_coverage())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig1_matrix, bench_fig7_coverage);
criterion_main!(benches);
