//! Every [`SpeculationPolicy`] impl must reproduce the §5.2/§5.3 truth
//! tables kept as the auditable spec in `dgl_core::rules`.
//!
//! Two layers of evidence:
//!
//! 1. an **exhaustive** sweep over every reachable `DoppelgangerState`
//!    (the state machine is tiny — that is the paper's §5.1 cost
//!    argument — so we can simply enumerate it);
//! 2. a **property test** driving the state machine with random event
//!    sequences, catching any reachable-state combination the
//!    enumeration template might miss.

use dgl_core::policy::REGISTRY;
use dgl_core::{may_propagate, reissue_allowed, DoppelgangerState};
use proptest::prelude::*;

/// Every reachable doppelganger state, built through the public event
/// API: {no data, memory hit, memory miss} × {store override or not} ×
/// {unresolved, verified correct, mispredicted} × {invalidated or not},
/// plus the unpredicted and discarded states.
fn reachable_states() -> Vec<DoppelgangerState> {
    let mut states = vec![DoppelgangerState::unpredicted()];
    // A prediction that never issued (no spare port before resolution).
    states.push(DoppelgangerState::predicted(0x40));
    for data in [None, Some(true), Some(false)] {
        for store_forward in [false, true] {
            for invalidated in [false, true] {
                for resolve in [None, Some(0x40), Some(0x80)] {
                    let mut dg = DoppelgangerState::predicted(0x40);
                    dg.mark_issued();
                    if store_forward {
                        dg.on_store_forward();
                    }
                    if let Some(hit) = data {
                        dg.on_data(hit);
                    }
                    if invalidated {
                        dg.on_invalidation();
                    }
                    if let Some(real) = resolve {
                        dg.resolve(real);
                    }
                    states.push(dg);
                    let mut discarded = dg;
                    discarded.discard();
                    states.push(discarded);
                }
            }
        }
    }
    states
}

#[test]
fn every_policy_reproduces_the_propagation_truth_table() {
    for entry in &REGISTRY {
        let policy = entry.policy();
        for dg in reachable_states() {
            for nonspec in [false, true] {
                assert_eq!(
                    policy.may_propagate_doppelganger(&dg, nonspec),
                    may_propagate(entry.kind, &dg, nonspec),
                    "{}: diverges from rules::may_propagate on {dg:?}, nonspec={nonspec}",
                    entry.name,
                );
            }
        }
    }
}

#[test]
fn every_policy_reproduces_the_reissue_truth_table() {
    for entry in &REGISTRY {
        let policy = entry.policy();
        for nonspec in [false, true] {
            assert_eq!(
                policy.reissue_allowed(nonspec),
                reissue_allowed(entry.kind, nonspec),
                "{}: diverges from rules::reissue_allowed, nonspec={nonspec}",
                entry.name,
            );
        }
    }
}

/// One random event applied to the state machine.
#[derive(Debug, Clone, Copy)]
enum Event {
    Issue,
    Data(bool),
    StoreForward,
    Invalidate,
    Resolve(bool),
    Discard,
}

fn apply(dg: &mut DoppelgangerState, ev: Event) {
    match ev {
        Event::Issue => {
            if dg.is_predicted() {
                dg.mark_issued();
            }
        }
        Event::Data(hit) => dg.on_data(hit),
        Event::StoreForward => dg.on_store_forward(),
        Event::Invalidate => dg.on_invalidation(),
        Event::Resolve(correct) => {
            dg.resolve(if correct { 0x40 } else { 0x80 });
        }
        Event::Discard => dg.discard(),
    }
}

proptest! {
    #[test]
    fn random_event_sequences_keep_policy_and_rules_equivalent(
        predicted in proptest::prelude::any::<bool>(),
        choices in proptest::collection::vec((0u8..6, proptest::prelude::any::<bool>()), 0..8),
        nonspec in proptest::prelude::any::<bool>(),
    ) {
        let mut dg = if predicted {
            DoppelgangerState::predicted(0x40)
        } else {
            DoppelgangerState::unpredicted()
        };
        for (tag, flag) in choices {
            let ev = match tag {
                0 => Event::Issue,
                1 => Event::Data(flag),
                2 => Event::StoreForward,
                3 => Event::Invalidate,
                4 => Event::Resolve(flag),
                _ => Event::Discard,
            };
            apply(&mut dg, ev);
        }
        for entry in &REGISTRY {
            prop_assert_eq!(
                entry.policy().may_propagate_doppelganger(&dg, nonspec),
                may_propagate(entry.kind, &dg, nonspec),
                "{}: {:?} nonspec={}", entry.name, dg, nonspec
            );
        }
    }
}
