//! **Doppelganger Loads** — the primary contribution of the paper,
//! implemented as a pipeline-independent component.
//!
//! A *doppelganger load* is an address-predicted stand-in for a load that
//! a secure speculation scheme would delay (paper §4.1). It
//!
//! 1. predicts the load's address at decode, from a PC-indexed stride
//!    table trained **only on committed loads**;
//! 2. issues the memory access early with the predicted address and
//!    **preloads** the load's destination register;
//! 3. propagates the preloaded value only once the real address has been
//!    computed and verified to match **and** the underlying scheme
//!    (NDA-P, STT, or DoM) declares the load safe.
//!
//! On a misprediction the preload is silently discarded and the real
//! load is issued under the scheme's ordinary rules — no squash, no
//! rollback, no extra physical register.
//!
//! This crate owns everything about that mechanism that does not touch
//! pipeline plumbing:
//!
//! * [`AddressPredictor`] — the dual-mode stride predictor/prefetcher
//!   with coverage/accuracy accounting (paper §5.1, Figure 7);
//! * [`DoppelgangerState`] — the per-load-queue-entry state machine
//!   (predicted/issued/preloaded/verified bits, store-forward override,
//!   invalidation note);
//! * [`SchemeKind`] + [`rules`] — the scheme-specific propagation rules
//!   of §5.2/§5.3, in one auditable place.
//!
//! The out-of-order core in `dgl-pipeline` drives these via a narrow
//! interface (`predict_at_decode`, `on_data`, `resolve`,
//! `may_propagate`, `train`), mirroring the paper's claim that the
//! mechanism integrates with complexity-effective changes: the
//! doppelganger shares the load's LQ entry, physical destination
//! register, and the existing stride-prefetcher storage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod entry;
pub mod policy;
pub mod predictor;
pub mod rules;
pub mod scheme;

pub use config::DoppelgangerConfig;
pub use entry::{DoppelgangerState, Verification};
pub use policy::{
    policy_for, DelayCause, DemandAccessPlan, SchemeEntry, SpeculationPolicy, REGISTRY,
};
pub use predictor::{AddressPredictor, ApMode, ApStats};
pub use rules::{may_propagate, reissue_allowed};
pub use scheme::SchemeKind;
