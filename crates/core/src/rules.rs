//! Scheme-specific propagation and reissue rules (paper §5, §5.2, §5.3).
//!
//! These two functions are the security heart of the mechanism: they
//! decide *when a preloaded value may become architecturally visible*
//! and *when a mispredicted doppelganger's real load may touch memory*.
//! Keeping them pure and in one place makes the threat-model-transparency
//! argument auditable and testable in isolation.
//!
//! The pipeline does **not** call these directly — it consults the
//! scheme's [`crate::policy::SpeculationPolicy`], which implements the
//! same decisions independently. `tests/policy_matches_rules.rs` proves
//! the two stay equivalent over the whole state space, so this module
//! remains the compact, reviewable spec.

use crate::entry::{DoppelgangerState, Verification};
use crate::scheme::SchemeKind;

/// Whether a doppelganger's preloaded value may be propagated to
/// dependent instructions.
///
/// Common preconditions for every scheme: the predicted address must be
/// **verified correct** and the data must be **ready** (preloaded from
/// memory or overridden by an older store). On top of that:
///
/// * **Baseline + AP** — propagate immediately (there is no security
///   delay to respect; the paper uses this to show AP alone gains only
///   ~0.5%).
/// * **NDA-P / NDA-S + AP** — propagate only when the load is non-speculative,
///   matching NDA-P's rule for conventional loads (§5: "loads cannot
///   propagate before address is verified and load is non-speculative").
/// * **STT + AP** — propagate as soon as verified; the value then
///   carries taint exactly as a conventional STT load result would
///   (§5.2). The pipeline handles tainting.
/// * **DoM + AP** — a doppelganger that *hit* in L1 behaves like a DoM
///   hit (propagate once verified); one that *missed* behaves like a
///   DoM miss (propagate only when non-speculative) (§5.3 / §4.6).
pub fn may_propagate(scheme: SchemeKind, dg: &DoppelgangerState, load_nonspec: bool) -> bool {
    if dg.verification() != Verification::Correct || !dg.data_ready() {
        return false;
    }
    match scheme {
        SchemeKind::Baseline => true,
        // NDA-P-eager changes *operand readiness for branches*, not the
        // propagation rule: preloads stay NDA-P-gated.
        SchemeKind::NdaP | SchemeKind::NdaS | SchemeKind::NdaPEager => load_nonspec,
        SchemeKind::Stt => true,
        SchemeKind::DoM => match (dg.is_store_overridden(), dg.l1_hit()) {
            // §4.6: store-forwarded values follow the same visibility
            // rule as the underlying access would.
            (_, Some(true)) => true,
            (_, Some(false)) => load_nonspec,
            // Store override arrived before the memory response: be
            // conservative until the hit/miss outcome is known.
            (true, None) => load_nonspec,
            (false, None) => false,
        },
    }
}

/// Whether the conventional load of a **mispredicted** doppelganger may
/// be issued to memory now.
///
/// * **Baseline / NDA-P / STT** — reissue immediately; the load then
///   obeys the scheme's ordinary issue rules (for STT the pipeline has
///   already established that the address operands are untainted, since
///   it only resolves addresses it may legally use; under NDA-P an
///   address that could be computed implies its producers propagated).
/// * **DoM + AP** — §5.3: "the second load of mispredicted doppelgangers
///   are only issued once the load is non-speculative", closing the
///   implicit doppelganger channel of Figure 2 without any taint
///   tracking.
pub fn reissue_allowed(scheme: SchemeKind, load_nonspec: bool) -> bool {
    match scheme {
        SchemeKind::Baseline
        | SchemeKind::NdaP
        | SchemeKind::NdaS
        | SchemeKind::NdaPEager
        | SchemeKind::Stt => true,
        SchemeKind::DoM => load_nonspec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verified(l1_hit: bool) -> DoppelgangerState {
        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        dg.on_data(l1_hit);
        dg.resolve(0x40);
        dg
    }

    #[test]
    fn never_propagates_unverified() {
        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        dg.on_data(true);
        for s in SchemeKind::ALL {
            assert!(!may_propagate(s, &dg, true), "{s}: unverified");
        }
    }

    #[test]
    fn never_propagates_without_data() {
        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        dg.resolve(0x40);
        for s in SchemeKind::ALL {
            assert!(!may_propagate(s, &dg, true), "{s}: no data");
        }
    }

    #[test]
    fn never_propagates_mispredicted() {
        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        dg.on_data(true);
        dg.resolve(0x80);
        for s in SchemeKind::ALL {
            assert!(!may_propagate(s, &dg, true), "{s}: mispredicted");
        }
    }

    #[test]
    fn baseline_and_stt_propagate_once_verified() {
        let dg = verified(false);
        assert!(may_propagate(SchemeKind::Baseline, &dg, false));
        assert!(may_propagate(SchemeKind::Stt, &dg, false));
    }

    #[test]
    fn nda_requires_nonspeculative() {
        let dg = verified(true);
        assert!(!may_propagate(SchemeKind::NdaP, &dg, false));
        assert!(may_propagate(SchemeKind::NdaP, &dg, true));
    }

    #[test]
    fn dom_hit_propagates_on_verify_miss_waits() {
        let hit = verified(true);
        assert!(may_propagate(SchemeKind::DoM, &hit, false));
        let miss = verified(false);
        assert!(!may_propagate(SchemeKind::DoM, &miss, false));
        assert!(may_propagate(SchemeKind::DoM, &miss, true));
    }

    #[test]
    fn dom_store_forward_before_outcome_is_conservative() {
        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        dg.on_store_forward();
        dg.resolve(0x40);
        // Outcome unknown: wait for non-speculation.
        assert!(!may_propagate(SchemeKind::DoM, &dg, false));
        assert!(may_propagate(SchemeKind::DoM, &dg, true));
        // Once the access is known to have hit, it may go early.
        dg.on_data(true);
        assert!(may_propagate(SchemeKind::DoM, &dg, false));
    }

    #[test]
    fn reissue_rules() {
        assert!(reissue_allowed(SchemeKind::Baseline, false));
        assert!(reissue_allowed(SchemeKind::NdaP, false));
        assert!(reissue_allowed(SchemeKind::Stt, false));
        assert!(!reissue_allowed(SchemeKind::DoM, false));
        assert!(reissue_allowed(SchemeKind::DoM, true));
    }
}
