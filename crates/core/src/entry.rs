//! The per-load doppelganger state machine.
//!
//! Each load-queue entry carries one [`DoppelgangerState`]. The paper's
//! cost argument (§5.1) rests on this state being tiny: the predicted
//! address reuses the LQ entry's address slot, the preloaded value lives
//! in the load's own physical destination register, and the only new
//! bits are `predicted`/`executed` plus bookkeeping for store-forward
//! override and snooped invalidations.

use std::fmt;

/// Outcome of comparing the predicted address with the resolved one
/// (step (E) in the paper's Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verification {
    /// The real address has not been generated yet.
    #[default]
    Pending,
    /// Predicted and resolved addresses match: the preload may be used.
    Correct,
    /// Mismatch: the preload must be discarded and the load reissued.
    Mispredicted,
}

/// Doppelganger bookkeeping attached to one load-queue entry.
///
/// # Examples
///
/// ```
/// use dgl_core::{DoppelgangerState, Verification};
///
/// let mut dg = DoppelgangerState::predicted(0x1000);
/// dg.mark_issued();
/// dg.on_data(true); // preload arrived, L1 hit
/// assert_eq!(dg.resolve(0x1000), Verification::Correct);
/// assert!(dg.data_ready());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DoppelgangerState {
    predicted_addr: Option<u64>,
    issued: bool,
    data_ready: bool,
    l1_hit: Option<bool>,
    verification: Verification,
    store_overridden: bool,
    invalidated: bool,
}

impl DoppelgangerState {
    /// State for a load the predictor produced no prediction for — the
    /// load falls under the normal operation of the secure scheme.
    pub fn unpredicted() -> Self {
        Self::default()
    }

    /// State for a load with a predicted address (the `predicted` bit of
    /// Figure 5 is set).
    pub fn predicted(addr: u64) -> Self {
        Self {
            predicted_addr: Some(addr),
            ..Self::default()
        }
    }

    /// The predicted address, if any.
    pub fn predicted_addr(&self) -> Option<u64> {
        self.predicted_addr
    }

    /// Whether a prediction exists.
    pub fn is_predicted(&self) -> bool {
        self.predicted_addr.is_some()
    }

    /// Whether the doppelganger memory request has been sent.
    pub fn is_issued(&self) -> bool {
        self.issued
    }

    /// Whether the preloaded value (memory response or store-forward
    /// override) is in the destination register.
    pub fn data_ready(&self) -> bool {
        self.data_ready
    }

    /// L1 hit/miss outcome of the doppelganger access, once known.
    /// Drives the DoM propagation rule (§5.3).
    pub fn l1_hit(&self) -> Option<bool> {
        self.l1_hit
    }

    /// Current verification status.
    pub fn verification(&self) -> Verification {
        self.verification
    }

    /// Whether an older store's value replaced the memory preload
    /// (§4.4: forwarding happens transparently; the doppelganger still
    /// appears in memory).
    pub fn is_store_overridden(&self) -> bool {
        self.store_overridden
    }

    /// Whether an external invalidation matched the predicted address
    /// while in flight (§4.5).
    pub fn is_invalidated(&self) -> bool {
        self.invalidated
    }

    /// Marks the doppelganger request as issued to memory.
    ///
    /// # Panics
    ///
    /// Panics (debug) if there is no prediction to issue.
    pub fn mark_issued(&mut self) {
        debug_assert!(self.is_predicted(), "cannot issue without a prediction");
        self.issued = true;
    }

    /// Records the arrival of the doppelganger's memory response.
    /// `l1_hit` reports where the data was found (true = L1 hit). A
    /// store-forward override that already supplied the value keeps
    /// priority: memory data never overwrites a forwarded store value.
    pub fn on_data(&mut self, l1_hit: bool) {
        self.l1_hit = Some(l1_hit);
        self.data_ready = true;
    }

    /// Records that an older store with a matching resolved address
    /// supplied the value (replacing any memory preload, §4.4 case 1/2).
    pub fn on_store_forward(&mut self) {
        self.store_overridden = true;
        self.data_ready = true;
    }

    /// Notes an external invalidation that matched the predicted
    /// address. The doppelganger itself is *not* squashed; the note
    /// takes effect when the preload would propagate (§4.5).
    pub fn on_invalidation(&mut self) {
        self.invalidated = true;
    }

    /// Compares the freshly generated address against the prediction
    /// (step (E) of Figure 5) and records the outcome.
    ///
    /// On a mismatch the preload is discarded (`data_ready` clears) and
    /// the `predicted`/`executed` bits reset so the conventional load
    /// can be replayed.
    pub fn resolve(&mut self, real_addr: u64) -> Verification {
        let verdict = match self.predicted_addr {
            Some(p) if p == real_addr => Verification::Correct,
            Some(_) => Verification::Mispredicted,
            None => Verification::Pending,
        };
        if verdict == Verification::Mispredicted {
            // Discard the preload; any late response to the wrong
            // address request is dropped by the pipeline. A mispredicted
            // doppelganger's invalidation note is ignored (§4.5).
            self.data_ready = false;
            self.issued = false;
            self.store_overridden = false;
            self.invalidated = false;
        }
        self.verification = verdict;
        verdict
    }

    /// [`resolve`](Self::resolve) plus a structured trace event: emits
    /// [`dgl_trace::DglEvent::Verified`] (with the pre-resolve predicted
    /// address, the real one, and the verdict) when a prediction
    /// existed. Unpredicted loads stay silent.
    pub fn resolve_traced(
        &mut self,
        real_addr: u64,
        seq: u64,
        pc: u64,
        cycle: u64,
        sink: Option<&mut (dyn dgl_trace::TraceSink + '_)>,
    ) -> Verification {
        let predicted = self.predicted_addr;
        let verdict = self.resolve(real_addr);
        if let (Some(predicted), Some(sink)) = (predicted, sink) {
            sink.emit(&dgl_trace::TraceEvent::Dgl {
                seq,
                pc,
                cycle,
                event: dgl_trace::DglEvent::Verified {
                    predicted,
                    actual: real_addr,
                    correct: verdict == Verification::Correct,
                },
            });
        }
        verdict
    }

    /// Abandons the doppelganger entirely: the load reverts to the
    /// scheme's normal operation. Used when the preload cannot stand in
    /// for the load (e.g. a partially overlapping older store) — the
    /// preload is discarded exactly as on a misprediction, so no stale
    /// data can ever propagate.
    pub fn discard(&mut self) {
        self.predicted_addr = None;
        self.issued = false;
        self.data_ready = false;
        self.l1_hit = None;
        self.verification = Verification::Pending;
        self.store_overridden = false;
        self.invalidated = false;
    }

    /// Whether the invalidation note must take effect when propagating
    /// (only for verified-correct doppelgangers; mispredicted ones
    /// ignore it, §4.5).
    pub fn invalidation_applies(&self) -> bool {
        self.invalidated && self.verification == Verification::Correct
    }
}

impl fmt::Display for DoppelgangerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.predicted_addr {
            None => write!(f, "unpredicted"),
            Some(a) => write!(
                f,
                "pred={a:#x} issued={} ready={} verif={:?}",
                self.issued, self.data_ready, self.verification
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpredicted_stays_pending() {
        let mut dg = DoppelgangerState::unpredicted();
        assert!(!dg.is_predicted());
        assert_eq!(dg.resolve(0x40), Verification::Pending);
        assert!(!dg.data_ready());
    }

    #[test]
    fn correct_prediction_keeps_preload() {
        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        dg.on_data(false);
        assert_eq!(dg.resolve(0x40), Verification::Correct);
        assert!(dg.data_ready());
        assert_eq!(dg.l1_hit(), Some(false));
    }

    #[test]
    fn misprediction_discards_preload() {
        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        dg.on_data(true);
        assert_eq!(dg.resolve(0x80), Verification::Mispredicted);
        assert!(!dg.data_ready(), "preload must be discarded");
        assert!(!dg.is_issued(), "executed bit cleared for replay");
    }

    #[test]
    fn verification_before_data() {
        // Address can resolve before the doppelganger response arrives.
        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        assert_eq!(dg.resolve(0x40), Verification::Correct);
        assert!(!dg.data_ready());
        dg.on_data(true);
        assert!(dg.data_ready());
    }

    #[test]
    fn store_forward_overrides_memory() {
        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        dg.on_store_forward();
        assert!(dg.is_store_overridden());
        assert!(dg.data_ready());
        // A late memory response does not clear the override flag.
        dg.on_data(false);
        assert!(dg.is_store_overridden());
    }

    #[test]
    fn invalidation_only_applies_when_correct() {
        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        dg.on_invalidation();
        assert!(!dg.invalidation_applies(), "not yet verified");
        dg.resolve(0x40);
        assert!(dg.invalidation_applies());

        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        dg.on_invalidation();
        dg.resolve(0x80);
        assert!(
            !dg.invalidation_applies(),
            "mispredicted doppelganger ignores the invalidation"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "without a prediction")]
    fn issuing_unpredicted_panics_in_debug() {
        let mut dg = DoppelgangerState::unpredicted();
        dg.mark_issued();
    }

    #[test]
    fn discard_reverts_to_unpredicted() {
        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        dg.on_data(true);
        dg.resolve(0x40);
        dg.discard();
        assert_eq!(dg, DoppelgangerState::unpredicted());
        assert!(!dg.data_ready());
    }

    #[test]
    fn resolve_traced_emits_verified_only_when_predicted() {
        use dgl_trace::{DglEvent, RecordingSink, TraceEvent, TraceSink};
        let mut sink = RecordingSink::new();

        let mut dg = DoppelgangerState::unpredicted();
        dg.resolve_traced(0x40, 1, 0x100, 7, Some(&mut sink));
        assert!(sink.is_empty(), "unpredicted loads are silent");

        let mut dg = DoppelgangerState::predicted(0x40);
        dg.mark_issued();
        assert_eq!(
            dg.resolve_traced(0x80, 2, 0x104, 9, Some(&mut sink)),
            Verification::Mispredicted
        );
        let events = sink.drain();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            TraceEvent::Dgl {
                seq: 2,
                pc: 0x104,
                cycle: 9,
                event: DglEvent::Verified {
                    predicted: 0x40,
                    actual: 0x80,
                    correct: false,
                },
            }
        ));
    }

    #[test]
    fn display_forms() {
        assert_eq!(DoppelgangerState::unpredicted().to_string(), "unpredicted");
        assert!(DoppelgangerState::predicted(0x40)
            .to_string()
            .contains("pred=0x40"));
    }
}
