//! The `SpeculationPolicy` layer: every scheme-conditional decision the
//! pipeline makes, behind one trait with one impl per scheme.
//!
//! The paper's central claim is that doppelganger loads are
//! *threat-model transparent*: the same mechanism drops into NDA-P, STT,
//! and DoM unchanged (§5.2/§5.3). This module is where that claim lives
//! in code. A scheme is a [`SpeculationPolicy`] implementation plus a
//! [`SchemeEntry`] row in [`REGISTRY`]; the pipeline's stage modules
//! never mention [`SchemeKind`] — they consult the policy at eight fixed
//! decision points (load issue gating, result propagation, doppelganger
//! propagation and reissue, branch-resolution ordering, taint hooks, and
//! DoM's delayed-replacement access plan).
//!
//! The [`crate::rules`] module keeps the §5.2/§5.3 truth tables as an
//! *independent*, pure-function spec; `tests/policy_matches_rules.rs`
//! asserts every policy reproduces them over the full
//! `DoppelgangerState` × speculation-status space. A policy therefore
//! cannot silently drift from the auditable rules.
//!
//! # Adding a scheme
//!
//! 1. Add a [`SchemeKind`] variant (and a row in the `rules` truth
//!    tables, which double as the security spec).
//! 2. Implement [`SpeculationPolicy`] for a new unit struct, overriding
//!    only the hooks that differ from the unsafe-baseline defaults.
//! 3. Register it in [`REGISTRY`].
//!
//! Nothing else: `dgl-sim`'s `ConfigId`, the `dgl` CLI parser and
//! `attack` sweep, and the `dgl-bench` report bins all enumerate the
//! registry. [`SchemeKind::NdaPEager`] was added exactly this way, with
//! zero edits to pipeline stage code.

use crate::entry::{DoppelgangerState, Verification};
use crate::scheme::SchemeKind;
use std::fmt;

/// How a *speculative* demand load is allowed to probe the memory
/// hierarchy (DoM's §2.2 lever; everyone else uses [`Self::FULL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandAccessPlan {
    /// Probe the L1 only; a miss is *not* forwarded down the hierarchy.
    pub l1_only: bool,
    /// Update replacement state on a hit (DoM defers this to
    /// non-speculation so a transient hit leaves no LRU footprint).
    pub update_replacement: bool,
}

impl DemandAccessPlan {
    /// Unrestricted access: full hierarchy, replacement updated.
    pub const FULL: Self = Self {
        l1_only: false,
        update_replacement: true,
    };
    /// DoM's speculative probe: L1 only, replacement untouched.
    pub const L1_PROBE: Self = Self {
        l1_only: true,
        update_replacement: false,
    };
}

/// Why a policy rule parked a load (or held a result): the delay
/// provenance tag each scheme attaches to its restrictive verdicts, so
/// cycle-loss accounting can charge exposed stall cycles to the exact
/// rule that caused them rather than to an undifferentiated "scheme"
/// bucket.
///
/// Every cause corresponds to one restrictive decision point in the
/// [`SpeculationPolicy`] interface; a scheme that never takes the
/// restrictive branch of a decision never produces its cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DelayCause {
    /// STT: a transmitter stalled at issue on a tainted operand.
    TaintOperand,
    /// DoM: a speculative L1 miss parked the load until the visibility
    /// point (also covers DoM's doppelganger-visibility deferral).
    DomDelay,
    /// NDA: a completed load's result is locked until the visibility
    /// point (permissive and strict propagation alike).
    PropagateLock,
    /// NDA-S: a non-load speculative result is locked at writeback.
    ResultLock,
    /// DoM: a mispredicted doppelganger's conventional replay is held
    /// until the load is non-speculative (§5.3).
    ReissueHold,
    /// Branches forced to resolve in visibility-point order (§4.6,
    /// DoM+AP).
    BranchOrder,
}

impl DelayCause {
    /// Every cause, in stable report order.
    pub const ALL: [DelayCause; 6] = [
        DelayCause::TaintOperand,
        DelayCause::DomDelay,
        DelayCause::PropagateLock,
        DelayCause::ResultLock,
        DelayCause::ReissueHold,
        DelayCause::BranchOrder,
    ];

    /// Stable snake_case label used in metrics and manifests.
    pub fn label(self) -> &'static str {
        match self {
            DelayCause::TaintOperand => "taint_operand",
            DelayCause::DomDelay => "dom_delay",
            DelayCause::PropagateLock => "propagate_lock",
            DelayCause::ResultLock => "result_lock",
            DelayCause::ReissueHold => "reissue_hold",
            DelayCause::BranchOrder => "branch_order",
        }
    }

    /// Dense index into per-cause arrays (inverse of [`Self::ALL`]).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("in ALL")
    }

    /// Whether the cause parks a load on the *issue* side (the load
    /// could not even access memory) as opposed to holding an already
    /// completed result back from dependents. Cycle accounting uses
    /// this to classify how a park ultimately resolved: issue-side
    /// parks that propagate conventionally were *delayed*, while
    /// propagate-side parks released at the visibility point were
    /// merely *woken*.
    pub fn is_issue_side(self) -> bool {
        matches!(
            self,
            DelayCause::TaintOperand | DelayCause::DomDelay | DelayCause::ReissueHold
        )
    }
}

/// Every scheme-conditional decision the out-of-order core makes.
///
/// Defaults encode the unsafe baseline; a scheme overrides only the
/// hooks where it differs. All hooks are `&self` and stateless — the
/// pipeline owns all mutable state (register file, taint map, shadow
/// tracker) and passes the relevant summary (`load_nonspec`,
/// `speculative`) in.
pub trait SpeculationPolicy: fmt::Debug + Send + Sync {
    /// The scheme this policy implements.
    fn kind(&self) -> SchemeKind;

    /// Report name (`nda-p`, `dom`, ...).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// STT: taint speculative load results, propagate taint through
    /// dependents, and delay *transmitters* with tainted operands.
    /// Gates every taint-map interaction in the pipeline.
    fn tracks_taint(&self) -> bool {
        false
    }

    /// NDA-S: **every** speculative result is locked at writeback, not
    /// just load results; the visibility sweep unlocks them in order.
    fn delays_all_propagation(&self) -> bool {
        false
    }

    /// How a demand load may access the hierarchy. `speculative` is the
    /// load's status at issue time. DoM restricts speculative loads to
    /// an L1 probe with the replacement update deferred.
    fn demand_access(&self, speculative: bool) -> DemandAccessPlan {
        let _ = speculative;
        DemandAccessPlan::FULL
    }

    /// Whether a *conventional* load result (own demand access, no
    /// doppelganger involved) may propagate to dependents now.
    /// NDA delays this to the visibility point.
    fn may_propagate_load(&self, load_nonspec: bool) -> bool {
        let _ = load_nonspec;
        true
    }

    /// Scheme-specific part of the doppelganger propagation rule
    /// (§5.2/§5.3), consulted only after the common preconditions
    /// (verified-correct address, data ready) hold. Override this, not
    /// [`Self::may_propagate_doppelganger`].
    fn doppelganger_visibility(&self, dg: &DoppelgangerState, load_nonspec: bool) -> bool {
        let _ = (dg, load_nonspec);
        true
    }

    /// Whether a doppelganger's preloaded value may propagate to
    /// dependents. Enforces the scheme-independent preconditions, then
    /// defers to [`Self::doppelganger_visibility`]. Mirrors
    /// [`crate::rules::may_propagate`].
    fn may_propagate_doppelganger(&self, dg: &DoppelgangerState, load_nonspec: bool) -> bool {
        dg.verification() == Verification::Correct
            && dg.data_ready()
            && self.doppelganger_visibility(dg, load_nonspec)
    }

    /// Whether the conventional load of a **mispredicted** doppelganger
    /// may be issued to memory now (§5.3). Mirrors
    /// [`crate::rules::reissue_allowed`].
    fn reissue_allowed(&self, load_nonspec: bool) -> bool {
        let _ = load_nonspec;
        true
    }

    /// Whether branches must resolve in visibility-point order. §4.6:
    /// DoM+AP closes its implicit channel this way, so the hook sees
    /// whether address prediction is enabled.
    fn resolves_branches_in_order(&self, ap_enabled: bool) -> bool {
        let _ = ap_enabled;
        false
    }

    /// Whether branch-like instructions (conditional branches, indirect
    /// jumps, returns) may *issue* reading operands that are ready but
    /// not yet propagated. Only `nda-p-eager` sets this; the pipeline
    /// then tracks such reads so a locked value repaired in place
    /// squashes its eager consumers (the §4.4 no-squash rule assumes no
    /// consumer observed the old value).
    fn branch_reads_unpropagated(&self) -> bool {
        false
    }

    /// Threat-model breadth (§3): does the scheme protect secrets
    /// already residing in registers? DoM does (speculative transmit
    /// never leaves L1); NDA-S does (nothing speculative propagates);
    /// NDA-P and STT do not.
    fn protects_register_secrets(&self) -> bool {
        false
    }

    // --- Delay-cause tags -------------------------------------------
    //
    // Each restrictive verdict above has a matching tag hook naming the
    // DelayCause it spends cycles under. The pipeline's cycle-loss
    // accounting consults the tag at the site where the verdict is
    // applied; `None` means the policy never takes that restrictive
    // branch (the unsafe-baseline default). Tags are observability
    // metadata only — they must never influence a decision.

    /// Cause when [`Self::tracks_taint`] stalls a tainted transmitter
    /// at issue.
    fn issue_delay_cause(&self) -> Option<DelayCause> {
        None
    }

    /// Cause when a restricted [`Self::demand_access`] plan turns a
    /// speculative miss into a parked load.
    fn miss_delay_cause(&self) -> Option<DelayCause> {
        None
    }

    /// Cause when [`Self::may_propagate_load`] or
    /// [`Self::doppelganger_visibility`] denies propagation of a
    /// completed load result.
    fn propagate_delay_cause(&self) -> Option<DelayCause> {
        None
    }

    /// Cause when [`Self::delays_all_propagation`] locks a non-load
    /// result at writeback.
    fn result_lock_cause(&self) -> Option<DelayCause> {
        None
    }

    /// Cause when [`Self::reissue_allowed`] holds a mispredicted
    /// doppelganger's conventional replay.
    fn reissue_delay_cause(&self) -> Option<DelayCause> {
        None
    }

    /// Cause when [`Self::resolves_branches_in_order`] delays a ready
    /// branch resolution.
    fn branch_delay_cause(&self) -> Option<DelayCause> {
        None
    }
}

/// Unprotected out-of-order execution: all defaults.
#[derive(Debug)]
pub struct BaselinePolicy;

impl SpeculationPolicy for BaselinePolicy {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Baseline
    }
}

/// NDA permissive propagation: speculative load results are locked
/// until the load is non-speculative.
#[derive(Debug)]
pub struct NdaPPolicy;

impl SpeculationPolicy for NdaPPolicy {
    fn kind(&self) -> SchemeKind {
        SchemeKind::NdaP
    }
    fn may_propagate_load(&self, load_nonspec: bool) -> bool {
        load_nonspec
    }
    fn doppelganger_visibility(&self, _dg: &DoppelgangerState, load_nonspec: bool) -> bool {
        load_nonspec
    }
    fn propagate_delay_cause(&self) -> Option<DelayCause> {
        Some(DelayCause::PropagateLock)
    }
}

/// NDA strict propagation: like NDA-P, plus *every* speculative result
/// (not just loads) is locked until non-speculative.
#[derive(Debug)]
pub struct NdaSPolicy;

impl SpeculationPolicy for NdaSPolicy {
    fn kind(&self) -> SchemeKind {
        SchemeKind::NdaS
    }
    fn delays_all_propagation(&self) -> bool {
        true
    }
    fn may_propagate_load(&self, load_nonspec: bool) -> bool {
        load_nonspec
    }
    fn doppelganger_visibility(&self, _dg: &DoppelgangerState, load_nonspec: bool) -> bool {
        load_nonspec
    }
    fn protects_register_secrets(&self) -> bool {
        true
    }
    fn propagate_delay_cause(&self) -> Option<DelayCause> {
        Some(DelayCause::PropagateLock)
    }
    fn result_lock_cause(&self) -> Option<DelayCause> {
        Some(DelayCause::ResultLock)
    }
}

/// NDA-P with eager branch resolution: branch-like instructions may
/// read ready-but-unpropagated operands, shrinking C-shadow windows
/// (see the `SchemeKind::NdaPEager` docs for the threat-model caveat).
#[derive(Debug)]
pub struct NdaPEagerPolicy;

impl SpeculationPolicy for NdaPEagerPolicy {
    fn kind(&self) -> SchemeKind {
        SchemeKind::NdaPEager
    }
    fn may_propagate_load(&self, load_nonspec: bool) -> bool {
        load_nonspec
    }
    fn doppelganger_visibility(&self, _dg: &DoppelgangerState, load_nonspec: bool) -> bool {
        load_nonspec
    }
    fn branch_reads_unpropagated(&self) -> bool {
        true
    }
    fn propagate_delay_cause(&self) -> Option<DelayCause> {
        Some(DelayCause::PropagateLock)
    }
}

/// Speculative Taint Tracking: propagation is free, transmitters with
/// tainted operands stall.
#[derive(Debug)]
pub struct SttPolicy;

impl SpeculationPolicy for SttPolicy {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Stt
    }
    fn tracks_taint(&self) -> bool {
        true
    }
    fn issue_delay_cause(&self) -> Option<DelayCause> {
        Some(DelayCause::TaintOperand)
    }
}

/// Delay-on-Miss: speculative loads are L1 probes with deferred
/// replacement; misses and mispredicted-doppelganger replays wait for
/// the visibility point; +AP requires in-order branch resolution.
#[derive(Debug)]
pub struct DomPolicy;

impl SpeculationPolicy for DomPolicy {
    fn kind(&self) -> SchemeKind {
        SchemeKind::DoM
    }
    fn demand_access(&self, speculative: bool) -> DemandAccessPlan {
        if speculative {
            DemandAccessPlan::L1_PROBE
        } else {
            DemandAccessPlan::FULL
        }
    }
    fn doppelganger_visibility(&self, dg: &DoppelgangerState, load_nonspec: bool) -> bool {
        match (dg.is_store_overridden(), dg.l1_hit()) {
            // §4.6: store-forwarded values follow the same visibility
            // rule as the underlying access would.
            (_, Some(true)) => true,
            (_, Some(false)) => load_nonspec,
            // Store override arrived before the memory response: be
            // conservative until the hit/miss outcome is known.
            (true, None) => load_nonspec,
            (false, None) => false,
        }
    }
    fn reissue_allowed(&self, load_nonspec: bool) -> bool {
        load_nonspec
    }
    fn resolves_branches_in_order(&self, ap_enabled: bool) -> bool {
        ap_enabled
    }
    fn protects_register_secrets(&self) -> bool {
        true
    }
    fn miss_delay_cause(&self) -> Option<DelayCause> {
        Some(DelayCause::DomDelay)
    }
    fn propagate_delay_cause(&self) -> Option<DelayCause> {
        Some(DelayCause::DomDelay)
    }
    fn reissue_delay_cause(&self) -> Option<DelayCause> {
        Some(DelayCause::ReissueHold)
    }
    fn branch_delay_cause(&self) -> Option<DelayCause> {
        Some(DelayCause::BranchOrder)
    }
}

/// One registered scheme: kind, names, description, and its policy.
#[derive(Debug, Clone, Copy)]
pub struct SchemeEntry {
    /// The enum tag.
    pub kind: SchemeKind,
    /// Canonical name (what reports print and the CLI accepts).
    pub name: &'static str,
    /// Accepted parse aliases, lowercase.
    pub aliases: &'static [&'static str],
    /// One-line description for `--help`-style listings.
    pub summary: &'static str,
    /// Scheme family for grouped reports (`baseline`, `nda`, `stt`,
    /// `dom`) — e.g. the `nda_variants` bench enumerates family `nda`.
    pub family: &'static str,
    /// Whether the scheme is part of the paper's 8-config evaluation
    /// matrix (§6). Extra variants still run everywhere else.
    pub in_paper_matrix: bool,
    policy: &'static dyn SpeculationPolicy,
}

impl SchemeEntry {
    /// The scheme's policy implementation.
    pub fn policy(&self) -> &'static dyn SpeculationPolicy {
        self.policy
    }
}

/// Every scheme the simulator knows, in presentation order. This is the
/// single source of truth enumerated by `ConfigId`, the CLI, and the
/// bench bins.
pub static REGISTRY: [SchemeEntry; 6] = [
    SchemeEntry {
        kind: SchemeKind::Baseline,
        name: "baseline",
        aliases: &["unsafe"],
        summary: "unprotected out-of-order execution",
        family: "baseline",
        in_paper_matrix: true,
        policy: &BaselinePolicy,
    },
    SchemeEntry {
        kind: SchemeKind::NdaP,
        name: "nda-p",
        aliases: &["nda", "ndap"],
        summary: "NDA, permissive propagation: lock speculative load results",
        family: "nda",
        in_paper_matrix: true,
        policy: &NdaPPolicy,
    },
    SchemeEntry {
        kind: SchemeKind::NdaS,
        name: "nda-s",
        aliases: &["ndas"],
        summary: "NDA, strict propagation: lock every speculative result",
        family: "nda",
        in_paper_matrix: false,
        policy: &NdaSPolicy,
    },
    SchemeEntry {
        kind: SchemeKind::NdaPEager,
        name: "nda-p-eager",
        aliases: &["ndape", "nda-eager"],
        summary: "NDA-P variant: branches resolve on ready-but-unpropagated operands",
        family: "nda",
        in_paper_matrix: false,
        policy: &NdaPEagerPolicy,
    },
    SchemeEntry {
        kind: SchemeKind::Stt,
        name: "stt",
        aliases: &[],
        summary: "Speculative Taint Tracking: delay tainted transmitters",
        family: "stt",
        in_paper_matrix: true,
        policy: &SttPolicy,
    },
    SchemeEntry {
        kind: SchemeKind::DoM,
        name: "dom",
        aliases: &["delay-on-miss"],
        summary: "Delay-on-Miss: speculative loads are L1-hit-only",
        family: "dom",
        in_paper_matrix: true,
        policy: &DomPolicy,
    },
];

/// The registry row for a scheme.
pub fn entry_for(kind: SchemeKind) -> &'static SchemeEntry {
    REGISTRY
        .iter()
        .find(|e| e.kind == kind)
        .expect("every SchemeKind has a REGISTRY row")
}

/// The policy implementation for a scheme.
pub fn policy_for(kind: SchemeKind) -> &'static dyn SpeculationPolicy {
    entry_for(kind).policy
}

/// Case-insensitive lookup by canonical name or alias.
pub fn lookup(name: &str) -> Option<&'static SchemeEntry> {
    let lower = name.to_ascii_lowercase();
    REGISTRY
        .iter()
        .find(|e| e.name == lower || e.aliases.contains(&lower.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_kind_once() {
        assert_eq!(REGISTRY.len(), SchemeKind::ALL.len());
        for kind in SchemeKind::ALL {
            let e = entry_for(kind);
            assert_eq!(e.kind, kind);
            assert_eq!(e.name, kind.name());
            assert_eq!(e.policy().kind(), kind);
        }
        let names: std::collections::HashSet<_> = REGISTRY.iter().map(|e| e.name).collect();
        assert_eq!(names.len(), REGISTRY.len(), "names must be unique");
    }

    #[test]
    fn paper_matrix_is_the_four_evaluated_schemes() {
        let evaluated: Vec<_> = REGISTRY
            .iter()
            .filter(|e| e.in_paper_matrix)
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            evaluated,
            [
                SchemeKind::Baseline,
                SchemeKind::NdaP,
                SchemeKind::Stt,
                SchemeKind::DoM
            ]
        );
    }

    #[test]
    fn lookup_accepts_names_and_aliases() {
        assert_eq!(lookup("NDA").unwrap().kind, SchemeKind::NdaP);
        assert_eq!(lookup("delay-on-miss").unwrap().kind, SchemeKind::DoM);
        assert_eq!(lookup("nda-p-eager").unwrap().kind, SchemeKind::NdaPEager);
        assert!(lookup("spectre").is_none());
    }

    #[test]
    fn policy_flags_match_paper() {
        assert!(policy_for(SchemeKind::Stt).tracks_taint());
        assert!(!policy_for(SchemeKind::NdaP).tracks_taint());
        assert!(policy_for(SchemeKind::NdaS).delays_all_propagation());
        assert!(!policy_for(SchemeKind::NdaP).delays_all_propagation());
        assert!(policy_for(SchemeKind::DoM).protects_register_secrets());
        assert!(policy_for(SchemeKind::NdaS).protects_register_secrets());
        assert!(!policy_for(SchemeKind::NdaP).protects_register_secrets());
        assert!(!policy_for(SchemeKind::NdaPEager).protects_register_secrets());
        assert!(policy_for(SchemeKind::DoM).resolves_branches_in_order(true));
        assert!(!policy_for(SchemeKind::DoM).resolves_branches_in_order(false));
        assert!(!policy_for(SchemeKind::Stt).resolves_branches_in_order(true));
        assert!(policy_for(SchemeKind::NdaPEager).branch_reads_unpropagated());
        assert!(!policy_for(SchemeKind::NdaP).branch_reads_unpropagated());
    }

    #[test]
    fn demand_access_plans() {
        for kind in SchemeKind::ALL {
            let p = policy_for(kind);
            assert_eq!(p.demand_access(false), DemandAccessPlan::FULL, "{kind}");
            let spec = p.demand_access(true);
            if kind == SchemeKind::DoM {
                assert_eq!(spec, DemandAccessPlan::L1_PROBE);
            } else {
                assert_eq!(spec, DemandAccessPlan::FULL, "{kind}");
            }
        }
    }

    #[test]
    fn delay_causes_tag_exactly_the_restrictive_verdicts() {
        use DelayCause as C;
        // A tag is present iff the policy can take the restrictive
        // branch of the corresponding decision.
        for kind in SchemeKind::ALL {
            let p = policy_for(kind);
            assert_eq!(p.issue_delay_cause().is_some(), p.tracks_taint(), "{kind}");
            assert_eq!(
                p.miss_delay_cause().is_some(),
                p.demand_access(true).l1_only,
                "{kind}"
            );
            // The propagate tag covers both denial paths: a speculative
            // conventional result held back, or a verified data-ready
            // preload deferred by the scheme's doppelganger-visibility
            // rule (DoM defers an L1-missing preload even though
            // conventional propagation is unrestricted).
            let mut missed_dgl = DoppelgangerState::predicted(0x40);
            missed_dgl.resolve(0x40);
            missed_dgl.on_data(false);
            let can_deny =
                !p.may_propagate_load(false) || !p.may_propagate_doppelganger(&missed_dgl, false);
            assert_eq!(p.propagate_delay_cause().is_some(), can_deny, "{kind}");
            assert_eq!(
                p.result_lock_cause().is_some(),
                p.delays_all_propagation(),
                "{kind}"
            );
            assert_eq!(
                p.reissue_delay_cause().is_some(),
                !p.reissue_allowed(false),
                "{kind}"
            );
            assert_eq!(
                p.branch_delay_cause().is_some(),
                p.resolves_branches_in_order(true),
                "{kind}"
            );
        }
        assert_eq!(
            policy_for(SchemeKind::Stt).issue_delay_cause(),
            Some(C::TaintOperand)
        );
        assert_eq!(
            policy_for(SchemeKind::DoM).miss_delay_cause(),
            Some(C::DomDelay)
        );
        assert_eq!(
            policy_for(SchemeKind::NdaP).propagate_delay_cause(),
            Some(C::PropagateLock)
        );
        assert_eq!(
            policy_for(SchemeKind::NdaS).result_lock_cause(),
            Some(C::ResultLock)
        );
        assert_eq!(
            policy_for(SchemeKind::DoM).reissue_delay_cause(),
            Some(C::ReissueHold)
        );
        assert_eq!(
            policy_for(SchemeKind::DoM).branch_delay_cause(),
            Some(C::BranchOrder)
        );
    }

    #[test]
    fn delay_cause_labels_are_stable_and_indexed() {
        for (i, c) in DelayCause::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(c
                .label()
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch == '_'));
        }
        assert!(DelayCause::TaintOperand.is_issue_side());
        assert!(DelayCause::DomDelay.is_issue_side());
        assert!(DelayCause::ReissueHold.is_issue_side());
        assert!(!DelayCause::PropagateLock.is_issue_side());
        assert!(!DelayCause::ResultLock.is_issue_side());
    }

    #[test]
    fn eager_variant_mirrors_nda_p_visibility() {
        let p = policy_for(SchemeKind::NdaPEager);
        let n = policy_for(SchemeKind::NdaP);
        for nonspec in [false, true] {
            assert_eq!(p.may_propagate_load(nonspec), n.may_propagate_load(nonspec));
            assert_eq!(p.reissue_allowed(nonspec), n.reissue_allowed(nonspec));
        }
    }
}
