//! The dual-mode address predictor / prefetcher.
//!
//! Paper §5.1: "The address predictor can be shared with a conventional
//! strided prefetcher, with the only difference that the current
//! address, instead of a future load address, being predicted." One
//! [`StrideTable`] instance backs both modes; the table is trained
//! exclusively from [`AddressPredictor::train_at_commit`], preserving
//! the security invariant that predictor state is a function of
//! committed execution only.

use crate::config::DoppelgangerConfig;
use dgl_predictor::StrideTable;
use std::collections::HashMap;
use std::fmt;

/// Which mode a query came from (statistics bucketing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApMode {
    /// Address prediction: predict the current instance at decode.
    AddressPrediction,
    /// Prefetching: predict a future instance at resolution.
    Prefetch,
}

/// Coverage and accuracy statistics for Figure 7.
///
/// Definitions match the paper's usage:
/// * **coverage** — committed loads that carried a prediction, over all
///   committed loads;
/// * **accuracy** — committed loads whose prediction matched the
///   resolved address, over committed loads that carried a prediction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApStats {
    /// Committed loads observed.
    pub committed_loads: u64,
    /// Committed loads that had a doppelganger prediction.
    pub predicted_loads: u64,
    /// Committed predicted loads whose prediction was correct.
    pub correct_predictions: u64,
    /// Predictions handed out at decode (includes squashed loads).
    pub predictions_issued: u64,
    /// Prefetch candidates proposed.
    pub prefetches_proposed: u64,
}

impl ApStats {
    /// Coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.committed_loads == 0 {
            0.0
        } else {
            self.predicted_loads as f64 / self.committed_loads as f64
        }
    }

    /// Accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        if self.predicted_loads == 0 {
            0.0
        } else {
            self.correct_predictions as f64 / self.predicted_loads as f64
        }
    }

    /// Publishes the counters (plus the derived coverage/accuracy
    /// gauges) into `reg` under `ap.*` names. One-way copy taken after
    /// a run; never read back by the simulator.
    pub fn publish(&self, reg: &mut dgl_stats::MetricsRegistry) {
        reg.counter("ap.committed_loads", self.committed_loads);
        reg.counter("ap.predicted_loads", self.predicted_loads);
        reg.counter("ap.correct_predictions", self.correct_predictions);
        reg.counter("ap.predictions_issued", self.predictions_issued);
        reg.counter("ap.prefetches_proposed", self.prefetches_proposed);
        reg.gauge("ap.coverage", self.coverage());
        reg.gauge("ap.accuracy", self.accuracy());
    }
}

impl fmt::Display for ApStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coverage {:.1}% accuracy {:.1}% ({} loads)",
            100.0 * self.coverage(),
            100.0 * self.accuracy(),
            self.committed_loads
        )
    }
}

/// The shared stride predictor in both of its modes.
///
/// # Examples
///
/// ```
/// use dgl_core::{AddressPredictor, DoppelgangerConfig};
///
/// let mut ap = AddressPredictor::new(DoppelgangerConfig::default());
/// for i in 0..4 {
///     ap.train_at_commit(0x100, 0x8000 + i * 8);
/// }
/// assert_eq!(ap.predict_at_decode(0x100), Some(0x8020));
/// let distance = ap.config().table.prefetch_distance as u64;
/// assert_eq!(ap.prefetch_candidate(0x100, 0x8020), Some(0x8020 + 8 * distance));
/// ```
#[derive(Debug, Clone)]
pub struct AddressPredictor {
    cfg: DoppelgangerConfig,
    table: StrideTable,
    stats: ApStats,
    /// Dispatched-but-uncommitted instances per load PC. The current
    /// instance's address is `last_committed + stride * (inflight + 1)`;
    /// without this the deep out-of-order window (352-entry ROB ≈ tens
    /// of loop iterations) would make every prediction stale. The count
    /// derives only from the fetch stream (committed-trained branch
    /// prediction), never from speculative data, so it is as
    /// secret-independent as the stride history itself.
    inflight: HashMap<u64, u32>,
}

impl AddressPredictor {
    /// Creates the predictor from a configuration.
    pub fn new(cfg: DoppelgangerConfig) -> Self {
        Self {
            cfg,
            table: StrideTable::new(cfg.table),
            stats: ApStats::default(),
            inflight: HashMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> DoppelgangerConfig {
        self.cfg
    }

    /// Address-prediction mode: called at decode/dispatch for **every**
    /// load PC (predicted or not — the in-flight instance count must
    /// stay consistent). Returns `None` when AP is disabled, the PC is
    /// untracked, or confidence is too low — the load then falls under
    /// the scheme's normal operation.
    ///
    /// Pair each call with exactly one [`train_at_commit`] (commit) or
    /// [`note_squash`](Self::note_squash) (squash) for the same PC.
    ///
    /// [`train_at_commit`]: Self::train_at_commit
    pub fn predict_at_decode(&mut self, pc: u64) -> Option<u64> {
        if !self.cfg.address_prediction {
            return None;
        }
        let older = if self.cfg.inflight_compensation {
            *self.inflight.get(&pc).unwrap_or(&0)
        } else {
            0
        };
        *self.inflight.entry(pc).or_insert(0) += 1;
        let p = self.table.predict_current(pc).map(|base| {
            let stride = self.table.peek(pc).map_or(0, |e| e.stride);
            base.wrapping_add((stride.wrapping_mul(older as i64)) as u64)
        });
        if p.is_some() {
            self.stats.predictions_issued += 1;
        }
        p
    }

    /// [`predict_at_decode`](Self::predict_at_decode) plus a structured
    /// trace event: emits [`dgl_trace::DglEvent::Predicted`] when a
    /// prediction is handed out.
    pub fn predict_at_decode_traced(
        &mut self,
        pc: u64,
        seq: u64,
        cycle: u64,
        sink: Option<&mut (dyn dgl_trace::TraceSink + '_)>,
    ) -> Option<u64> {
        let p = self.predict_at_decode(pc);
        if let (Some(predicted), Some(sink)) = (p, sink) {
            sink.emit(&dgl_trace::TraceEvent::Dgl {
                seq,
                pc,
                cycle,
                event: dgl_trace::DglEvent::Predicted { predicted },
            });
        }
        p
    }

    /// Releases the in-flight slot of a squashed load instance.
    pub fn note_squash(&mut self, pc: u64) {
        if !self.cfg.address_prediction {
            return;
        }
        if let Some(n) = self.inflight.get_mut(&pc) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.inflight.remove(&pc);
            }
        }
    }

    /// Prefetching mode: called when a load's address resolves; proposes
    /// the next line to prefetch, or `None` when prefetching is off or
    /// confidence is too low.
    pub fn prefetch_candidate(&mut self, pc: u64, resolved_addr: u64) -> Option<u64> {
        if !self.cfg.prefetch {
            return None;
        }
        let c = self.table.prefetch_candidate(pc, resolved_addr);
        if c.is_some() {
            self.stats.prefetches_proposed += 1;
        }
        c
    }

    /// Trains the shared table with a committed load and accounts
    /// coverage/accuracy. `prediction` is the address the doppelganger
    /// used for this (now committed) load, if any.
    ///
    /// This is the **only** mutation path into the table: training
    /// strictly by non-speculative loads when they commit is the
    /// security key of the whole approach (paper §5, Figure 5 caption).
    pub fn train_at_commit(&mut self, pc: u64, resolved_addr: u64) {
        self.table.train(pc, resolved_addr);
        self.stats.committed_loads += 1;
        if let Some(n) = self.inflight.get_mut(&pc) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.inflight.remove(&pc);
            }
        }
    }

    /// Accounts a committed load's prediction outcome without training
    /// twice — call together with [`Self::train_at_commit`] when the load had
    /// a doppelganger.
    pub fn note_commit_outcome(&mut self, was_predicted: bool, was_correct: bool) {
        if was_predicted {
            self.stats.predicted_loads += 1;
            if was_correct {
                self.stats.correct_predictions += 1;
            }
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> ApStats {
        self.stats
    }

    /// Zeroes the coverage/accuracy counters while keeping the trained
    /// stride table and the in-flight compensation map. Sampled
    /// simulation calls this at the warmup/measurement boundary so a
    /// window's coverage reflects only its measured slice.
    pub fn reset_stats(&mut self) {
        self.stats = ApStats::default();
        self.table.reset_stats();
    }

    /// Occupancy of the underlying table.
    pub fn table_occupancy(&self) -> usize {
        self.table.occupancy()
    }

    /// Appends a canonical flat-word dump of the predictor state —
    /// statistics, the in-flight compensation map (sorted by PC so the
    /// stream is deterministic), and the underlying stride table — to
    /// `out`. Restoring via [`restore_state`](Self::restore_state) into
    /// a predictor of the same configuration reproduces the trained
    /// state exactly.
    pub fn dump_state(&self, out: &mut Vec<u64>) {
        out.push(self.stats.committed_loads);
        out.push(self.stats.predicted_loads);
        out.push(self.stats.correct_predictions);
        out.push(self.stats.predictions_issued);
        out.push(self.stats.prefetches_proposed);
        let mut inflight: Vec<(u64, u32)> = self.inflight.iter().map(|(&k, &v)| (k, v)).collect();
        inflight.sort_unstable();
        out.push(inflight.len() as u64);
        for (pc, n) in inflight {
            out.push(pc);
            out.push(n as u64);
        }
        self.table.dump_state(out);
    }

    /// Restores state dumped by [`dump_state`](Self::dump_state) into
    /// this predictor, consuming exactly the words the dump produced.
    /// Returns `None` when the stream is truncated or malformed —
    /// corrupted serialized checkpoints must surface as a clean miss,
    /// not a panic.
    pub fn restore_state(&mut self, words: &mut &[u64]) -> Option<()> {
        if words.len() < 6 {
            return None;
        }
        let stats = ApStats {
            committed_loads: words[0],
            predicted_loads: words[1],
            correct_predictions: words[2],
            predictions_issued: words[3],
            prefetches_proposed: words[4],
        };
        let n_inflight = words[5];
        *words = &words[6..];
        if words.len() < 2 * n_inflight as usize {
            return None;
        }
        let mut inflight = HashMap::new();
        for chunk in words[..2 * n_inflight as usize].chunks_exact(2) {
            let count = u32::try_from(chunk[1]).ok()?;
            if count == 0 || inflight.insert(chunk[0], count).is_some() {
                return None; // zero counts and duplicate PCs never occur
            }
        }
        *words = &words[2 * n_inflight as usize..];
        self.table.restore_state(words)?;
        self.stats = stats;
        self.inflight = inflight;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained(ap: &mut AddressPredictor, pc: u64, base: u64, stride: u64, n: u64) {
        for i in 0..n {
            ap.train_at_commit(pc, base + i * stride);
        }
    }

    #[test]
    fn disabled_ap_never_predicts() {
        let mut ap = AddressPredictor::new(DoppelgangerConfig::prefetch_only());
        trained(&mut ap, 0x10, 0x1000, 8, 8);
        assert_eq!(ap.predict_at_decode(0x10), None);
        // ...but prefetching still works.
        assert!(ap.prefetch_candidate(0x10, 0x1040).is_some());
    }

    #[test]
    fn disabled_prefetch_proposes_nothing() {
        let cfg = DoppelgangerConfig {
            prefetch: false,
            ..DoppelgangerConfig::default()
        };
        let mut ap = AddressPredictor::new(cfg);
        trained(&mut ap, 0x10, 0x1000, 8, 8);
        assert_eq!(ap.prefetch_candidate(0x10, 0x1040), None);
        assert!(ap.predict_at_decode(0x10).is_some());
    }

    #[test]
    fn coverage_and_accuracy_accounting() {
        let mut ap = AddressPredictor::new(DoppelgangerConfig::default());
        // 4 committed loads: 2 predicted, 1 correct.
        ap.train_at_commit(0x10, 0x100);
        ap.note_commit_outcome(false, false);
        ap.train_at_commit(0x10, 0x108);
        ap.note_commit_outcome(false, false);
        ap.train_at_commit(0x10, 0x110);
        ap.note_commit_outcome(true, true);
        ap.train_at_commit(0x10, 0x118);
        ap.note_commit_outcome(true, false);
        let s = ap.stats();
        assert_eq!(s.committed_loads, 4);
        assert!((s.coverage() - 0.5).abs() < 1e-12);
        assert!((s.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let s = ApStats::default();
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.accuracy(), 0.0);
    }

    #[test]
    fn predictions_issued_counts_only_hits() {
        let mut ap = AddressPredictor::new(DoppelgangerConfig::default());
        assert_eq!(ap.predict_at_decode(0x77), None);
        assert_eq!(ap.stats().predictions_issued, 0);
        trained(&mut ap, 0x77, 0x2000, 16, 5);
        assert!(ap.predict_at_decode(0x77).is_some());
        assert_eq!(ap.stats().predictions_issued, 1);
    }

    #[test]
    fn traced_prediction_emits_event_only_on_hit() {
        use dgl_trace::{DglEvent, RecordingSink, TraceEvent, TraceSink};
        let mut ap = AddressPredictor::new(DoppelgangerConfig::default());
        let mut sink = RecordingSink::new();
        assert_eq!(
            ap.predict_at_decode_traced(0x77, 1, 3, Some(&mut sink)),
            None
        );
        assert!(sink.is_empty(), "no prediction, no event");
        trained(&mut ap, 0x77, 0x2000, 16, 5);
        let p = ap.predict_at_decode_traced(0x77, 2, 8, Some(&mut sink));
        assert!(p.is_some());
        let events = sink.drain();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            TraceEvent::Dgl {
                seq: 2,
                pc: 0x77,
                cycle: 8,
                event: DglEvent::Predicted { predicted } ,
            } if Some(predicted) == p
        ));
    }

    #[test]
    fn display_contains_percentages() {
        let s = ApStats {
            committed_loads: 10,
            predicted_loads: 5,
            correct_predictions: 4,
            ..ApStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("50.0%"));
        assert!(text.contains("80.0%"));
    }
}
