//! Configuration of the doppelganger mechanism.

use dgl_predictor::StrideTableConfig;

/// Configuration for [`AddressPredictor`](crate::AddressPredictor).
///
/// The default reproduces the paper's setup: a 1024-entry, 8-way stride
/// structure shared between prefetching and address prediction, with
/// prefetching always enabled (every evaluated design "features a
/// PC-based stride prefetcher", §6) and address prediction toggled per
/// experiment ("+AP" configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoppelgangerConfig {
    /// Whether address prediction (doppelganger issue) is enabled.
    pub address_prediction: bool,
    /// Whether prefetching mode is enabled.
    pub prefetch: bool,
    /// Whether predictions compensate for in-flight instances of the
    /// same load PC (`last_committed + stride × (inflight + 1)` instead
    /// of the paper's literal `last + stride`). Defaults to on; turning
    /// it off reproduces the plain rule for the ablation study, where
    /// accuracy collapses on deep-window strided code.
    pub inflight_compensation: bool,
    /// Geometry of the shared stride table.
    pub table: StrideTableConfig,
}

impl Default for DoppelgangerConfig {
    fn default() -> Self {
        Self {
            address_prediction: true,
            prefetch: true,
            inflight_compensation: true,
            table: StrideTableConfig::default(),
        }
    }
}

impl DoppelgangerConfig {
    /// The paper's non-AP configuration: prefetcher only.
    pub fn prefetch_only() -> Self {
        Self {
            address_prediction: false,
            ..Self::default()
        }
    }

    /// Disables both modes (used for controlled ablations).
    pub fn disabled() -> Self {
        Self {
            address_prediction: false,
            prefetch: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_both_modes() {
        let c = DoppelgangerConfig::default();
        assert!(c.address_prediction);
        assert!(c.prefetch);
        assert_eq!(c.table.entries, 1024);
        assert_eq!(c.table.ways, 8);
    }

    #[test]
    fn prefetch_only_disables_ap() {
        let c = DoppelgangerConfig::prefetch_only();
        assert!(!c.address_prediction);
        assert!(c.prefetch);
    }

    #[test]
    fn disabled_turns_everything_off() {
        let c = DoppelgangerConfig::disabled();
        assert!(!c.address_prediction);
        assert!(!c.prefetch);
    }
}
