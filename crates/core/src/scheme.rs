//! The secure speculation schemes the paper evaluates.

use std::fmt;
use std::str::FromStr;

/// Which speculation policy the core runs.
///
/// These are the four baselines of the paper's evaluation (§6); each can
/// additionally be combined with address prediction (doppelganger
/// loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum SchemeKind {
    /// Unprotected out-of-order execution: speculative load values
    /// propagate freely, so secrets can leak through explicit and
    /// implicit channels.
    #[default]
    Baseline,
    /// Non-speculative Data Access, permissive propagation (NDA-P):
    /// speculative loads may issue and complete, but their *results* are
    /// not propagated to dependents until the load is non-speculative
    /// (Weisse et al., MICRO 2019).
    NdaP,
    /// Non-speculative Data Access, **strict** data propagation (NDA-S):
    /// *no* speculative instruction's result propagates until it is
    /// non-speculative — the most conservative of NDA's strategies
    /// (paper §2.1: it "blocks ILP" too). Not part of the paper's
    /// evaluation; included to show why NDA-P is the one worth
    /// optimizing.
    NdaS,
    /// Speculative Taint Tracking: speculative load outputs are tainted;
    /// taint propagates through dependents; *transmitters* (loads,
    /// stores, branch resolution) with tainted operands are delayed
    /// until the taint's root load reaches the visibility point (Yu et
    /// al., MICRO 2019).
    Stt,
    /// Delay-on-Miss: speculative loads issue but must hit in the L1;
    /// misses are delayed and reissued when the load becomes
    /// non-speculative, and replacement updates for speculative hits are
    /// applied retroactively (Sakalis et al., ISCA 2019).
    DoM,
}

impl SchemeKind {
    /// All schemes, in the paper's presentation order (plus NDA-S).
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::Baseline,
        SchemeKind::NdaP,
        SchemeKind::NdaS,
        SchemeKind::Stt,
        SchemeKind::DoM,
    ];

    /// The three secure schemes the paper evaluates.
    pub const SECURE: [SchemeKind; 3] = [SchemeKind::NdaP, SchemeKind::Stt, SchemeKind::DoM];

    /// Short name used in reports (`baseline`, `nda-p`, `stt`, `dom`).
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Baseline => "baseline",
            SchemeKind::NdaP => "nda-p",
            SchemeKind::NdaS => "nda-s",
            SchemeKind::Stt => "stt",
            SchemeKind::DoM => "dom",
        }
    }

    /// Whether this scheme delays the propagation of speculative load
    /// results at the source (both NDA variants).
    pub fn delays_propagation(self) -> bool {
        matches!(self, SchemeKind::NdaP | SchemeKind::NdaS)
    }

    /// Whether this scheme delays the propagation of **every**
    /// speculative result, not just loads (NDA-S).
    pub fn delays_all_propagation(self) -> bool {
        matches!(self, SchemeKind::NdaS)
    }

    /// Whether this scheme tracks taint through the register file (STT).
    pub fn tracks_taint(self) -> bool {
        matches!(self, SchemeKind::Stt)
    }

    /// Whether speculative loads are restricted to L1 hits (DoM).
    pub fn delays_on_miss(self) -> bool {
        matches!(self, SchemeKind::DoM)
    }

    /// Whether the scheme protects secrets already residing in registers
    /// (part of the threat-model comparison in §3: DoM does, NDA-P and
    /// STT do not). NDA-S also qualifies: with *no* speculative result
    /// propagating, a register secret cannot steer any transient
    /// transmitter — strictness buys breadth, at the §2.1 ILP cost.
    pub fn protects_register_secrets(self) -> bool {
        matches!(self, SchemeKind::DoM | SchemeKind::NdaS)
    }

    /// Whether combining this scheme with doppelganger loads requires
    /// in-order (visibility-point) branch resolution (§4.6: DoM+AP must
    /// resolve all branches in order to close implicit channels).
    pub fn ap_requires_inorder_branch_resolution(self) -> bool {
        matches!(self, SchemeKind::DoM)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a scheme name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError {
    text: String,
}

impl fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scheme `{}` (expected baseline, nda-p, stt, or dom)",
            self.text
        )
    }
}

impl std::error::Error for ParseSchemeError {}

impl FromStr for SchemeKind {
    type Err = ParseSchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "baseline" | "unsafe" => Ok(SchemeKind::Baseline),
            "nda-p" | "nda" | "ndap" => Ok(SchemeKind::NdaP),
            "nda-s" | "ndas" => Ok(SchemeKind::NdaS),
            "stt" => Ok(SchemeKind::Stt),
            "dom" | "delay-on-miss" => Ok(SchemeKind::DoM),
            _ => Err(ParseSchemeError { text: s.to_owned() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in SchemeKind::ALL {
            assert_eq!(s.name().parse::<SchemeKind>().unwrap(), s);
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!("NDA".parse::<SchemeKind>().unwrap(), SchemeKind::NdaP);
        assert_eq!(
            "delay-on-miss".parse::<SchemeKind>().unwrap(),
            SchemeKind::DoM
        );
        assert!("spectre".parse::<SchemeKind>().is_err());
    }

    #[test]
    fn property_flags_match_paper() {
        assert!(SchemeKind::NdaP.delays_propagation());
        assert!(SchemeKind::NdaS.delays_propagation());
        assert!(SchemeKind::NdaS.delays_all_propagation());
        assert!(!SchemeKind::NdaP.delays_all_propagation());
        assert!(SchemeKind::Stt.tracks_taint());
        assert!(SchemeKind::DoM.delays_on_miss());
        assert!(SchemeKind::DoM.protects_register_secrets());
        assert!(SchemeKind::NdaS.protects_register_secrets());
        assert!(!SchemeKind::Stt.protects_register_secrets());
        assert!(!SchemeKind::NdaP.protects_register_secrets());
        assert!(SchemeKind::DoM.ap_requires_inorder_branch_resolution());
        assert!(!SchemeKind::Stt.ap_requires_inorder_branch_resolution());
    }

    #[test]
    fn secure_excludes_baseline() {
        assert!(!SchemeKind::SECURE.contains(&SchemeKind::Baseline));
        assert!(!SchemeKind::SECURE.contains(&SchemeKind::NdaS));
        assert_eq!(SchemeKind::SECURE.len(), 3);
    }
}
