//! The secure speculation schemes the paper evaluates.
//!
//! `SchemeKind` is only a *tag*: every behavioural question ("does this
//! scheme track taint?", "may this value propagate?") is answered by the
//! scheme's [`crate::policy::SpeculationPolicy`] implementation, found
//! through [`crate::policy::REGISTRY`]. Keeping the tag enum dumb means
//! adding a scheme touches the policy module and nothing else.

use std::fmt;
use std::str::FromStr;

/// Which speculation policy the core runs.
///
/// The four baselines of the paper's evaluation (§6) plus two extra
/// variants (NDA-S, NDA-P-eager); each can additionally be combined with
/// address prediction (doppelganger loads). Behaviour lives in the
/// matching [`crate::policy::SpeculationPolicy`] impl.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum SchemeKind {
    /// Unprotected out-of-order execution: speculative load values
    /// propagate freely, so secrets can leak through explicit and
    /// implicit channels.
    #[default]
    Baseline,
    /// Non-speculative Data Access, permissive propagation (NDA-P):
    /// speculative loads may issue and complete, but their *results* are
    /// not propagated to dependents until the load is non-speculative
    /// (Weisse et al., MICRO 2019).
    NdaP,
    /// Non-speculative Data Access, **strict** data propagation (NDA-S):
    /// *no* speculative instruction's result propagates until it is
    /// non-speculative — the most conservative of NDA's strategies
    /// (paper §2.1: it "blocks ILP" too). Not part of the paper's
    /// evaluation; included to show why NDA-P is the one worth
    /// optimizing.
    NdaS,
    /// Speculative Taint Tracking: speculative load outputs are tainted;
    /// taint propagates through dependents; *transmitters* (loads,
    /// stores, branch resolution) with tainted operands are delayed
    /// until the taint's root load reaches the visibility point (Yu et
    /// al., MICRO 2019).
    Stt,
    /// Delay-on-Miss: speculative loads issue but must hit in the L1;
    /// misses are delayed and reissued when the load becomes
    /// non-speculative, and replacement updates for speculative hits are
    /// applied retroactively (Sakalis et al., ISCA 2019).
    DoM,
    /// NDA-P with **eager branch resolution**: branch-like instructions
    /// (conditional branches, indirect jumps, returns) may issue reading
    /// operands that are *ready* but not yet *propagated*, so a C-shadow
    /// fed by a locked load resolves without waiting for the visibility
    /// point. Load/store address operands still require propagation, so
    /// the explicit Spectre-v1 cache channel stays closed; the trade-off
    /// is that a transient value can steer branch *resolution* early,
    /// i.e. the implicit branch channel NDA-P already leaves open (§3)
    /// is reachable slightly sooner. Added as the registry's
    /// proof-of-extensibility: a pure policy impl, no stage edits.
    NdaPEager,
}

impl SchemeKind {
    /// All schemes, in the paper's presentation order (plus the NDA
    /// variants).
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::Baseline,
        SchemeKind::NdaP,
        SchemeKind::NdaS,
        SchemeKind::NdaPEager,
        SchemeKind::Stt,
        SchemeKind::DoM,
    ];

    /// The three secure schemes the paper evaluates.
    pub const SECURE: [SchemeKind; 3] = [SchemeKind::NdaP, SchemeKind::Stt, SchemeKind::DoM];

    /// Short name used in reports (`baseline`, `nda-p`, `stt`, `dom`).
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Baseline => "baseline",
            SchemeKind::NdaP => "nda-p",
            SchemeKind::NdaS => "nda-s",
            SchemeKind::NdaPEager => "nda-p-eager",
            SchemeKind::Stt => "stt",
            SchemeKind::DoM => "dom",
        }
    }

    /// This scheme's [`crate::policy::SpeculationPolicy`].
    pub fn policy(self) -> &'static dyn crate::policy::SpeculationPolicy {
        crate::policy::policy_for(self)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a scheme name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError {
    text: String,
}

impl fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = crate::policy::REGISTRY.iter().map(|e| e.name).collect();
        write!(
            f,
            "unknown scheme `{}` (expected one of: {})",
            self.text,
            names.join(", ")
        )
    }
}

impl std::error::Error for ParseSchemeError {}

impl FromStr for SchemeKind {
    type Err = ParseSchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::policy::lookup(s)
            .map(|e| e.kind)
            .ok_or_else(|| ParseSchemeError { text: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in SchemeKind::ALL {
            assert_eq!(s.name().parse::<SchemeKind>().unwrap(), s);
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!("NDA".parse::<SchemeKind>().unwrap(), SchemeKind::NdaP);
        assert_eq!(
            "delay-on-miss".parse::<SchemeKind>().unwrap(),
            SchemeKind::DoM
        );
        assert_eq!(
            "nda-p-eager".parse::<SchemeKind>().unwrap(),
            SchemeKind::NdaPEager
        );
        let err = "spectre".parse::<SchemeKind>().unwrap_err();
        assert!(err.to_string().contains("nda-p-eager"), "{err}");
    }

    #[test]
    fn secure_excludes_baseline_and_variants() {
        assert!(!SchemeKind::SECURE.contains(&SchemeKind::Baseline));
        assert!(!SchemeKind::SECURE.contains(&SchemeKind::NdaS));
        assert!(!SchemeKind::SECURE.contains(&SchemeKind::NdaPEager));
        assert_eq!(SchemeKind::SECURE.len(), 3);
    }

    #[test]
    fn policy_accessor_agrees_with_kind() {
        for s in SchemeKind::ALL {
            assert_eq!(s.policy().kind(), s);
            assert_eq!(s.policy().name(), s.name());
        }
    }
}
