//! Offline, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors a minimal property-testing harness instead of the
//! real crate. Semantics are intentionally close to proptest's for the
//! covered surface:
//!
//! - [`Strategy`] with `prop_map`, `boxed`, and `prop_recursive`
//! - range strategies (`0u8..40`, `1u8..=8`, `0u64..2048`, ...)
//! - [`any`], [`Just`], tuple strategies, [`collection::vec`],
//!   [`option::of`], and the [`prop_oneof!`] union macro
//! - the [`proptest!`] test macro with `#![proptest_config(..)]`
//! - [`prop_assert!`] / [`prop_assert_eq!`] returning
//!   [`TestCaseError`] instead of panicking inside the closure
//!
//! - shrinking: failing cases are minimized by [`Strategy::shrink`]
//!   (integers toward the range start / zero, vectors by removing and
//!   shrinking elements, tuples component-wise), bounded by
//!   [`ProptestConfig::max_shrink_iters`], and the minimal failing
//!   input is printed with `Debug`
//!
//! Differences from the real crate: string strategies treat the regex
//! pattern only as a request for arbitrary printable text, and
//! strategies built with `prop_map` / `boxed` / `prop_oneof!` do not
//! shrink through the transformation (the composed value is reported
//! as-is). Case generation is fully deterministic per test name, so
//! failures reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a 64-bit seed.
    pub fn from_seed(state: u64) -> Self {
        Self { state }
    }

    /// Next 64 raw random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n == 0` yields 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Error type test bodies can return; produced by the `prop_assert*`
/// macros and accepted by the `?` operator inside `proptest!` bodies.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The generated input should be discarded (treated as failure
    /// here, since this stand-in does not regenerate rejected cases).
    Reject(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Build a rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Upper bound on candidate evaluations while shrinking a failing
    /// case.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; this stand-in never forks.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self {
            cases,
            max_shrink_iters: 1024,
            fork: false,
        }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose simpler variants of a failing `value`, simplest first.
    /// The runner keeps the first variant that still fails and asks it
    /// to shrink again, so candidates must be strictly simpler than
    /// `value` (closer to the range start, shorter, ...) for the loop
    /// to converge. The default proposes nothing, which disables
    /// shrinking for strategies that cannot invert their construction
    /// (`prop_map`, `boxed`, unions).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
    }

    /// Build a recursive strategy: `f` receives the strategy for the
    /// nested level and returns the strategy for the level above. The
    /// stand-in expands the recursion `depth` times, so generated
    /// values nest at most `depth` levels above the leaves.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = f(current.clone()).boxed();
        }
        current
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies of one value type; built
/// by [`prop_oneof!`].
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union over `arms`; at least one arm is required.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

/// Types with a canonical whole-domain strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Simpler variants of `value`, simplest first (see
    /// [`Strategy::shrink`]).
    fn shrink(_value: &Self) -> Vec<Self> {
        Vec::new()
    }
}

/// Order-preserving dedup for small candidate lists.
trait DedupInOrder<T> {
    fn dedup_in_order(self) -> Vec<T>;
}

impl<T: PartialEq> DedupInOrder<T> for Vec<T> {
    fn dedup_in_order(self) -> Vec<T> {
        let mut out: Vec<T> = Vec::with_capacity(self.len());
        for v in self {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }

            fn shrink(value: &Self) -> Vec<Self> {
                // Toward zero: 0, halfway, one step.
                let v = *value as i128;
                [0i128, v / 2, v - v.signum()]
                    .into_iter()
                    .filter(|&c| c != v)
                    .map(|c| c as $t)
                    .collect::<Vec<_>>()
                    .dedup_in_order()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }

    fn shrink(value: &Self) -> Vec<Self> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }

    fn shrink(&self, value: &A) -> Vec<A> {
        A::shrink(value)
    }
}

/// Strategy over the whole domain of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Candidates between a range's start and a failing value, simplest
/// first: the start itself, the halfway point, one step down.
fn shrink_toward<T: Copy + PartialEq>(
    start: i128,
    value: i128,
    cast: impl Fn(i128) -> T,
) -> Vec<T> {
    [start, start + (value - start) / 2, value - 1]
        .into_iter()
        .filter(|&c| c >= start && c < value)
        .map(cast)
        .collect::<Vec<_>>()
        .dedup_in_order()
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128, |c| c as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *value as i128, |c| c as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Component-wise: each candidate simplifies exactly one
                // position, holding the others fixed.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

/// String-literal "regex" strategy. The pattern is not compiled; it
/// only signals that arbitrary printable text (with an occasional
/// non-ASCII or control character) is wanted, which matches how this
/// workspace uses it: fuzzing parsers that must never panic.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let max_len = self
            .rsplit_once(',')
            .and_then(|(_, tail)| tail.trim_end_matches('}').parse::<usize>().ok())
            .unwrap_or(64);
        let len = rng.below(max_len as u64 + 1) as usize;
        (0..len)
            .map(|_| {
                let roll = rng.next_u64();
                match roll % 16 {
                    0 => char::from_u32(0xA0 + (roll >> 8) as u32 % 0x2000).unwrap_or('λ'),
                    1 => '\t',
                    _ => (0x20 + (roll >> 8) as u8 % 0x5F) as char,
                }
            })
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let n = value.chars().count();
        if n == 0 {
            return Vec::new();
        }
        vec![
            String::new(),
            value.chars().take(n / 2).collect(),
            value.chars().take(n - 1).collect(),
        ]
        .dedup_in_order()
        .into_iter()
        .filter(|c| c != value)
        .collect()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Allowed lengths for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let (min, n) = (self.size.min, value.len());
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            // Length reductions first (the big wins), then dropping
            // single elements, then simplifying elements in place.
            if n > min {
                out.push(value[..min].to_vec());
                if n / 2 > min {
                    out.push(value[..n / 2].to_vec());
                }
                if n - 1 > min {
                    out.push(value[..n - 1].to_vec());
                }
                for i in 0..n.min(16) {
                    let mut cand = value.clone();
                    cand.remove(i);
                    out.push(cand);
                }
            }
            for i in 0..n.min(16) {
                for simpler in self.element.shrink(&value[i]).into_iter().take(2) {
                    let mut cand = value.clone();
                    cand[i] = simpler;
                    out.push(cand);
                }
            }
            out
        }
    }

    /// Vector strategy with `size` elements (exact count or range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies, mirroring `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`; see [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }

        fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
            match value {
                None => Vec::new(),
                Some(v) => std::iter::once(None)
                    .chain(self.inner.shrink(v).into_iter().map(Some))
                    .collect(),
            }
        }
    }

    /// `None` a quarter of the time, otherwise `Some` of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Runs one generated case and, on failure, greedily shrinks it:
/// keep the first [`Strategy::shrink`] candidate that still fails,
/// restart from it, stop when no candidate fails or `max_iters`
/// evaluations are spent. Returns `Err((minimal_value, error,
/// evaluations))` for a failing case. Used by [`proptest!`]; exposed
/// for reuse.
///
/// # Errors
///
/// The minimal failing input, when `run` fails on `value`.
pub fn run_and_shrink<S: Strategy>(
    strategy: &S,
    max_iters: u32,
    value: S::Value,
    run: impl Fn(&S::Value) -> Result<(), TestCaseError>,
) -> Result<(), (S::Value, TestCaseError, u32)> {
    let Err(err) = run(&value) else {
        return Ok(());
    };
    let mut best = value;
    let mut best_err = err;
    let mut evals: u32 = 0;
    'shrinking: while evals < max_iters {
        let candidates = strategy.shrink(&best);
        if candidates.is_empty() {
            break;
        }
        for candidate in candidates {
            if evals >= max_iters {
                break 'shrinking;
            }
            evals += 1;
            if let Err(e) = run(&candidate) {
                best = candidate;
                best_err = e;
                continue 'shrinking;
            }
        }
        break;
    }
    Err((best, best_err, evals))
}

/// Derive the per-test base seed from the test name so every test gets
/// an independent deterministic stream.
pub fn seed_for_test(name: &str) -> u64 {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    seed
}

/// The common-use imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, Union,
    };

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Uniform choice between strategies with a shared value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert a condition inside a `proptest!` body, returning a
/// [`TestCaseError`] (not panicking) so the runner can report the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Assert two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
/// A failing case is shrunk via [`Strategy::shrink`] (bounded by
/// `config.max_shrink_iters`) and the minimal failing input is printed
/// with `Debug`; argument values must be `Clone + Debug`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with ($config) $($rest)* }
    };
    (@with ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let base = $crate::seed_for_test(stringify!($name));
            let __strategies = ($(($strategy),)+);
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::from_seed(
                    base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                // Drawn as one tuple, component order left-to-right —
                // the same rng stream as drawing each arg in turn.
                let __tuple = $crate::Strategy::new_value(&__strategies, &mut rng);
                let __outcome = $crate::run_and_shrink(
                    &__strategies,
                    config.max_shrink_iters,
                    __tuple,
                    |__vals| {
                        let ($($arg,)+) = ::std::clone::Clone::clone(__vals);
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    },
                );
                if let ::std::result::Result::Err((__best, __best_err, __evals)) = __outcome {
                    let ($($arg,)+) = &__best;
                    let mut __minimal = ::std::string::String::new();
                    $(__minimal.push_str(&::std::format!(
                        "  {} = {:?}\n",
                        stringify!($arg),
                        $arg
                    ));)+
                    panic!(
                        "proptest {}: case {}/{} failed: {}\n\
                         minimal failing input (after {} shrink evaluations):\n{}",
                        stringify!($name),
                        case,
                        config.cases,
                        __best_err,
                        __evals,
                        __minimal
                    );
                }
            }
        }
        $crate::proptest! { @with ($config) $($rest)* }
    };
    (@with ($config:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest! { @with ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::from_seed(9);
        let s = (0u8..8, 1u8..=4, 0u64..2048);
        for _ in 0..200 {
            let (a, b, c) = s.new_value(&mut rng);
            assert!(a < 8);
            assert!((1..=4).contains(&b));
            assert!(c < 2048);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::from_seed(11);
        let s = prop_oneof![Just(0usize), Just(1usize), Just(2usize)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.new_value(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::from_seed(3);
        let s = crate::collection::vec(any::<u64>(), 1..5);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((1..=4).contains(&v.len()));
        }
        let exact = crate::collection::vec(any::<bool>(), 7);
        assert_eq!(exact.new_value(&mut rng).len(), 7);
    }

    #[test]
    fn option_of_yields_both_variants() {
        let mut rng = TestRng::from_seed(5);
        let s = crate::option::of(any::<i16>());
        let (mut some, mut none) = (false, false);
        for _ in 0..100 {
            match s.new_value(&mut rng) {
                Some(_) => some = true,
                None => none = true,
            }
        }
        assert!(some && none);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_asserts(x in 0u64..100, flips in prop::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(x < 100, "x out of range: {x}");
            prop_assert_eq!(flips.len(), flips.len());
        }
    }

    #[test]
    fn ranges_shrink_toward_their_start() {
        let s = 10u64..1000;
        let cands = s.shrink(&500);
        assert_eq!(cands, vec![10, 255, 499]);
        assert!(s.shrink(&10).is_empty(), "start is already minimal");
        let signed = -50i64..=50;
        assert_eq!(signed.shrink(&-50), Vec::<i64>::new());
        assert!(signed.shrink(&7).contains(&-50));
    }

    #[test]
    fn any_int_shrinks_toward_zero() {
        let s = any::<i64>();
        assert_eq!(s.shrink(&100), vec![0, 50, 99]);
        assert_eq!(s.shrink(&-8), vec![0, -4, -7]);
        assert!(s.shrink(&0).is_empty());
        assert!(s.shrink(&i64::MIN).contains(&(i64::MIN + 1)));
    }

    #[test]
    fn vec_shrink_respects_the_minimum_length() {
        let s = crate::collection::vec(any::<u8>(), 2..=6);
        let v = vec![9u8, 8, 7, 6];
        for cand in s.shrink(&v) {
            assert!(cand.len() >= 2, "candidate below min length: {cand:?}");
        }
        assert!(s.shrink(&v).iter().any(|c| c.len() < v.len()));
        // Element simplification still applies at the minimum length.
        assert!(s.shrink(&vec![5u8, 5]).iter().any(|c| c.len() == 2));
    }

    #[test]
    fn tuples_shrink_one_component_at_a_time() {
        let s = (0u8..10, 0u8..10);
        for (a, b) in s.shrink(&(4, 7)) {
            assert!((a, b) != (4, 7));
            assert!(a == 4 || b == 7, "both components changed at once");
        }
    }

    // Not a #[test]: invoked below through catch_unwind to observe the
    // shrunk panic message.
    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
        fn fails_at_ten_or_more(x in 0u64..1000, _pad in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 10, "too big: {x}");
        }
    }

    #[test]
    fn failing_cases_shrink_to_the_boundary() {
        let panic = std::panic::catch_unwind(fails_at_ten_or_more)
            .expect_err("property must fail somewhere in 64 cases");
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| panic.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("x = 10"),
            "expected the minimal failing input x = 10 in:\n{msg}"
        );
        assert!(
            msg.contains("minimal failing input"),
            "missing header:\n{msg}"
        );
        assert!(
            msg.contains("_pad = []"),
            "vector should shrink to empty:\n{msg}"
        );
    }
}
