//! Offline, dependency-free stand-in for the parts of `criterion` this
//! workspace uses.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors a small wall-clock benchmark runner with the same
//! API shape: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::benchmark_group`], `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, and [`Bencher::iter`].
//!
//! Differences from the real crate: no statistical analysis, outlier
//! rejection, or HTML reports — each benchmark runs a bounded number
//! of timed samples and prints mean time per iteration (plus
//! throughput when declared). Good enough to spot large regressions
//! and to keep `cargo bench` exercising the same code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Cap on how long one benchmark id may spend sampling.
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// Declared per-iteration work, used to print throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many abstract elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a parameter's `Display` form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// Build an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing harness handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Run `f` repeatedly, timing each call, until the sample target
    /// or the time budget is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, untimed
        let started = Instant::now();
        for _ in 0..self.target_samples.max(1) {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id.to_owned(), f);
        g.finish();
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Run one benchmark that receives an input by reference.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Finish the group (reports are printed as benchmarks run).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mean = b.mean();
        let thrpt = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  thrpt: {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  thrpt: {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: time: {:?} ({} samples){}",
            self.name,
            id,
            mean,
            b.samples.len(),
            thrpt
        );
    }
}

/// Bundle benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert!(runs >= 2); // warm-up + at least one timed sample
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter("x"), &41u64, |b, &i| {
            b.iter(|| {
                seen = i + 1;
                seen
            })
        });
        g.finish();
        assert_eq!(seen, 42);
    }
}
