//! Offline, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors a minimal deterministic implementation instead of
//! the real crate. Only the API surface the workloads crate relies on
//! is provided: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`]. The generator is SplitMix64,
//! which is plenty for synthetic-workload data generation (the only
//! consumer); it is **not** suitable for cryptographic use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be produced uniformly from one 64-bit random draw.
pub trait Standard: Sized {
    /// Build a value of this type from raw random bits.
    fn from_random_bits(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_random_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_random_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Ranges that a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Map raw random bits onto the range.
    fn sample_from_bits(self, bits: u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from_bits(self, bits: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (bits as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from_bits(self, bits: u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (bits as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Core random-value interface, mirroring `rand::Rng`.
pub trait Rng {
    /// Produce the next 64 raw random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value uniformly over the type's whole domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_random_bits(self.next_u64())
    }

    /// Sample a value uniformly from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from_bits(self.next_u64())
    }

    /// Sample a bool that is `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        #[inline]
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..17);
            assert!(v < 17);
            let w: usize = rng.gen_range(3..=9);
            assert!((3..=9).contains(&w));
            let s: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_covers_both_bools() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[rng.gen::<bool>() as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
