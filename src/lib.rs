//! # Doppelganger Loads
//!
//! A from-scratch Rust reproduction of
//! *Doppelganger Loads: A Safe, Complexity-Effective Optimization for
//! Secure Speculation Schemes* (Kvalsvik, Aimoniotis, Kaxiras,
//! Själander — ISCA 2023).
//!
//! A **doppelganger load** is an address-predicted stand-in for a load
//! that a secure speculation scheme would delay: a stride predictor
//! trained *only on committed loads* guesses the load's address at
//! decode, the access is issued early, the value is preloaded into the
//! load's own destination register, and it is released only once the
//! real address verifies **and** the underlying scheme (NDA-P, STT, or
//! DoM) declares the load safe. Mispredictions discard the preload and
//! replay the load conventionally — no squash, no rollback, no change
//! to the memory hierarchy, and no change to the scheme's threat model.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`isa`] | RISC-like ISA, assembler, program builder, golden-model emulator |
//! | [`mem`] | L1/L2/L3 + DRAM hierarchy, MSHRs, bandwidth model, observation traces |
//! | [`predictor`] | gshare/BTB branch prediction, the shared stride table |
//! | [`core`] | the doppelganger mechanism itself (predictor, state machine, rules) |
//! | [`pipeline`] | the out-of-order core with the four speculation policies |
//! | [`workloads`] | the synthetic SPEC-like benchmark suite |
//! | [`stats`] | counters, geomeans, tables, charts |
//! | [`trace`] | structured event tracing, Chrome-trace / Konata / JSONL export |
//! | [`sim`] | [`SimBuilder`], figure reproduction, run diffing, the security laboratory |
//! | [`bench`](mod@bench) | figure/table bins and `dgl bench` trajectory records |
//!
//! # Quickstart
//!
//! ```
//! use doppelganger_loads::{SchemeKind, SimBuilder};
//! use doppelganger_loads::workloads::{by_name, Scale};
//!
//! let workload = by_name("hmmer_like", Scale::Custom(3_000)).unwrap();
//!
//! let secure = SimBuilder::new()
//!     .scheme(SchemeKind::NdaP)
//!     .run_workload(&workload)?;
//! let with_doppelgangers = SimBuilder::new()
//!     .scheme(SchemeKind::NdaP)
//!     .address_prediction(true)
//!     .run_workload(&workload)?;
//!
//! // Address prediction recovers performance the secure scheme lost.
//! assert!(with_doppelgangers.ipc() >= secure.ipc());
//! # Ok::<(), doppelganger_loads::RunError>(())
//! ```
//!
//! See `examples/` for runnable demonstrations (including an
//! in-simulator Spectre attack stopped by every secure scheme) and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dgl_bench as bench;
pub use dgl_core as core;
pub use dgl_fuzz as fuzz;
pub use dgl_isa as isa;
pub use dgl_mem as mem;
pub use dgl_pipeline as pipeline;
pub use dgl_predictor as predictor;
pub use dgl_sim as sim;
pub use dgl_stats as stats;
pub use dgl_trace as trace;
pub use dgl_workloads as workloads;

pub use dgl_core::{DoppelgangerConfig, SchemeKind, SpeculationPolicy, REGISTRY};
pub use dgl_isa::{Emulator, Program, ProgramBuilder, Reg, SparseMemory};
pub use dgl_pipeline::{Core, CoreConfig, RunError, RunReport};
pub use dgl_sim::SimBuilder;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let _ = crate::SchemeKind::DoM;
        let _ = crate::CoreConfig::default();
        let _ = crate::DoppelgangerConfig::default();
    }
}
