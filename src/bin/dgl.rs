//! `dgl` — the Doppelganger Loads command-line interface.
//!
//! ```text
//! dgl suite                          list the bundled workloads
//! dgl schemes                        list the registered secure-speculation schemes
//! dgl run <workload> [opts]          simulate one workload
//! dgl explain <workload> [opts]      attribution + occupancy for a scheme pair
//! dgl asm <file.dasm> [opts]         assemble + simulate a program
//! dgl attack [--secret BYTE]         run the Spectre laboratory
//! dgl figures [--insts N]            print the Figure 1 summary
//! dgl trace --workload NAME [opts]   record a structured pipeline trace
//! dgl bench [--quick|--insts N]      run the quick figure matrix, write BENCH_<seq>.json
//! dgl compare <a.json> <b.json>      diff two manifests / trajectory records
//! dgl serve [--stdin|--listen ADDR]  batch simulation service (JSON-lines jobs)
//! dgl fuzz [--seed N] [--iters N]    differential + two-secret fuzzing
//!
//! options: --scheme NAME                     (default baseline; see `dgl schemes`)
//!          --ap                              enable doppelganger loads
//!          --vp                              enable value prediction
//!          --insts N                         instruction budget (default 25000)
//!          --prof                            host time by pipeline stage (explain)
//!          --cpi                             per-config cycle-loss stacks + scheme delay
//!                                            provenance + overhead decomposition (explain)
//!          --quick                           the default quick budget (bench)
//!          --out FILE|DIR                    write trace to FILE / record to DIR (trace/bench)
//!          --max-ipc-delta X                 allowed relative drift (compare, default 0)
//!          --kips-floor FRAC                 max host.kips regression before failing (compare)
//!          --json                            machine-readable output (compare)
//!          --stats-json FILE                 write a versioned run manifest (run)
//!          --occupancy N                     sample occupancy every N cycles (run/explain)
//!          --top N                           load sites shown by `explain` (default 10)
//!          --format chrome|konata|jsonl      trace export format (default chrome)
//!          --sample                          sampled simulation (fast-forward + windows)
//!          --sample-interval N               instructions between window starts (default 10000)
//!          --sample-warmup N                 detailed warmup commits per window (default 2000)
//!          --sample-window N                 measured commits per window (default 1000)
//!          --sample-max-windows N            window cap (default 256)
//!          --sample-threads N                worker threads (default 0 = all cores)
//!          --ckpt-dir DIR                    on-disk checkpoint store (run --sample/serve)
//!          --store-cap N                     in-memory checkpoint entries (default 64)
//!          --stdin                           serve jobs from stdin (the default)
//!          --listen ADDR                     serve jobs over TCP (e.g. 127.0.0.1:9310)
//!          --workers N                       serve worker threads (default 2)
//!          --queue N                         serve queue depth = backpressure (default 4)
//!          --manifest-dir DIR                also write each job's manifest (serve)
//!          --stats                           emit a dgl-serve-stats document at end (serve)
//!          --max-conns N                     stop after N connections (serve --listen)
//!          --metrics-listen ADDR             HTTP metrics endpoint: /metrics, /metrics.json,
//!                                            /metrics/delta (serve)
//!          --metrics-interval SECS           stream dgl-serve-metrics lines every SECS (serve)
//!          --flight-recorder N               per-job trace ring for post-mortems,
//!                                            0 = off (serve, default 256)
//!          --postmortem-dir DIR              post-mortem artifacts for failed jobs (serve;
//!                                            falls back to --manifest-dir)
//!          --spans                           serve: write <id>.spans.json span sidecars;
//!                                            explain: render a spans/manifest file, or every
//!                                            sidecar in a manifest directory
//!          --seed N                          fuzzing base seed (default 1)
//!          --iters N                         fuzzing cases to run (default 200)
//!          --corpus DIR                      save minimized reproducers to DIR (fuzz)
//!
//! Malformed flag values and unknown commands/flags exit 2 with a
//! message naming the offending value; runtime failures exit 1.
//! ```

use doppelganger_loads::isa::asm::assemble;
use doppelganger_loads::sim::figure1;
use doppelganger_loads::sim::security::{LeakOutcome, SpectreV1Lab};
use doppelganger_loads::sim::SamplingConfig;
use doppelganger_loads::workloads::{by_name, suite, Scale};
use doppelganger_loads::{SchemeKind, SimBuilder, SparseMemory, REGISTRY};
use std::process::ExitCode;

/// `println!` that ignores broken pipes (`dgl ... | head` must not
/// panic).
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

struct Opts {
    scheme: SchemeKind,
    ap: bool,
    vp: bool,
    insts: u64,
    secret: u8,
    workload: Option<String>,
    format: String,
    out: Option<String>,
    sample: bool,
    sampling: SamplingConfig,
    stats_json: Option<String>,
    occupancy: u64,
    top: usize,
    prof: bool,
    cpi: bool,
    quick: bool,
    json: bool,
    max_ipc_delta: f64,
    kips_floor: Option<f64>,
    ckpt_dir: Option<String>,
    store_cap: usize,
    stdin: bool,
    listen: Option<String>,
    workers: usize,
    queue: usize,
    manifest_dir: Option<String>,
    stats: bool,
    max_conns: Option<usize>,
    metrics_listen: Option<String>,
    metrics_interval: Option<u64>,
    flight_recorder: usize,
    postmortem_dir: Option<String>,
    spans: bool,
    seed: u64,
    iters: u64,
    corpus: Option<String>,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        scheme: SchemeKind::Baseline,
        ap: false,
        vp: false,
        insts: 25_000,
        secret: 0x42,
        workload: None,
        format: "chrome".to_owned(),
        out: None,
        sample: false,
        sampling: SamplingConfig::default(),
        stats_json: None,
        occupancy: 0,
        top: 10,
        prof: false,
        cpi: false,
        quick: false,
        json: false,
        max_ipc_delta: 0.0,
        kips_floor: None,
        ckpt_dir: None,
        store_cap: 64,
        stdin: false,
        listen: None,
        workers: 2,
        queue: 4,
        manifest_dir: None,
        stats: false,
        max_conns: None,
        metrics_listen: None,
        metrics_interval: None,
        flight_recorder: 256,
        postmortem_dir: None,
        spans: false,
        seed: 1,
        iters: 200,
        corpus: None,
        positional: Vec::new(),
    };
    fn num<T: std::str::FromStr>(
        it: &mut std::slice::Iter<String>,
        flag: &str,
    ) -> Result<T, String> {
        let v = it.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad value `{v}` for {flag}"))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scheme" => {
                let v = it.next().ok_or("--scheme needs a value")?;
                o.scheme = v.parse().map_err(|e| format!("{e}"))?;
            }
            "--ap" => o.ap = true,
            "--vp" => o.vp = true,
            "--insts" => o.insts = num(&mut it, a)?,
            "--secret" => {
                let v = it.next().ok_or("--secret needs a value")?;
                // `0x`-prefixed values are hex, everything else decimal
                // (`--secret 42` means forty-two, not 0x42).
                o.secret = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u8::from_str_radix(hex, 16),
                    None => v.parse(),
                }
                .map_err(|_| format!("bad value `{v}` for --secret"))?;
            }
            "--workload" => {
                let v = it.next().ok_or("--workload needs a value")?;
                o.workload = Some(v.clone());
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                if !matches!(v.as_str(), "chrome" | "konata" | "jsonl") {
                    return Err(format!("bad format `{v}` (chrome|konata|jsonl)"));
                }
                o.format = v.clone();
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                o.out = Some(v.clone());
            }
            "--stats-json" => {
                let v = it.next().ok_or("--stats-json needs a file path")?;
                o.stats_json = Some(v.clone());
            }
            "--occupancy" => {
                o.occupancy = num(&mut it, a)?;
                if o.occupancy == 0 {
                    return Err("--occupancy interval must be > 0 cycles".into());
                }
            }
            "--top" => o.top = num(&mut it, a)?,
            "--prof" => o.prof = true,
            "--cpi" => o.cpi = true,
            "--quick" => o.quick = true,
            "--json" => o.json = true,
            "--max-ipc-delta" => {
                o.max_ipc_delta = num(&mut it, a)?;
                if !o.max_ipc_delta.is_finite() || o.max_ipc_delta < 0.0 {
                    return Err("--max-ipc-delta must be a finite non-negative number".into());
                }
            }
            "--kips-floor" => {
                let v: f64 = num(&mut it, a)?;
                if !v.is_finite() || !(0.0..1.0).contains(&v) {
                    return Err("--kips-floor must be a fraction in [0, 1)".into());
                }
                o.kips_floor = Some(v);
            }
            "--sample" => o.sample = true,
            "--sample-interval" => o.sampling.interval_insts = num(&mut it, a)?,
            "--sample-warmup" => o.sampling.warmup_insts = num(&mut it, a)?,
            "--sample-window" => o.sampling.window_insts = num(&mut it, a)?,
            "--sample-max-windows" => o.sampling.max_windows = num(&mut it, a)?,
            "--sample-threads" => o.sampling.threads = num(&mut it, a)?,
            "--ckpt-dir" => {
                let v = it.next().ok_or("--ckpt-dir needs a directory")?;
                o.ckpt_dir = Some(v.clone());
            }
            "--store-cap" => {
                o.store_cap = num(&mut it, a)?;
                if o.store_cap == 0 {
                    return Err("--store-cap must be > 0 entries".into());
                }
            }
            "--stdin" => {
                // Stdin is the default transport; the flag documents
                // intent in scripts and forbids mixing with --listen.
                if o.listen.is_some() {
                    return Err("--stdin and --listen are mutually exclusive".into());
                }
                o.stdin = true;
            }
            "--listen" => {
                if o.stdin {
                    return Err("--stdin and --listen are mutually exclusive".into());
                }
                let v = it.next().ok_or("--listen needs an address (host:port)")?;
                o.listen = Some(v.clone());
            }
            "--workers" => {
                o.workers = num(&mut it, a)?;
                if o.workers == 0 {
                    return Err("--workers must be > 0 threads".into());
                }
            }
            "--queue" => {
                o.queue = num(&mut it, a)?;
                if o.queue == 0 {
                    return Err("--queue must be > 0 jobs".into());
                }
            }
            "--manifest-dir" => {
                let v = it.next().ok_or("--manifest-dir needs a directory")?;
                o.manifest_dir = Some(v.clone());
            }
            "--stats" => o.stats = true,
            "--max-conns" => o.max_conns = Some(num(&mut it, a)?),
            "--metrics-listen" => {
                let v = it
                    .next()
                    .ok_or("--metrics-listen needs an address (host:port)")?;
                // Validated at parse time, not bind time: a typo'd
                // address is a usage error (exit 2), not a runtime
                // failure after workers have spun up. Hostnames are
                // fine — only the shape (host:port, port in u16) is
                // checked here.
                let well_formed = v
                    .rsplit_once(':')
                    .is_some_and(|(host, port)| !host.is_empty() && port.parse::<u16>().is_ok());
                if !well_formed {
                    return Err(format!(
                        "bad value `{v}` for --metrics-listen (need host:port)"
                    ));
                }
                o.metrics_listen = Some(v.clone());
            }
            "--metrics-interval" => {
                let v: u64 = num(&mut it, a)?;
                if v == 0 {
                    return Err("--metrics-interval must be > 0 seconds".into());
                }
                o.metrics_interval = Some(v);
            }
            "--flight-recorder" => o.flight_recorder = num(&mut it, a)?,
            "--postmortem-dir" => {
                let v = it.next().ok_or("--postmortem-dir needs a directory")?;
                o.postmortem_dir = Some(v.clone());
            }
            "--spans" => o.spans = true,
            "--seed" => o.seed = num(&mut it, a)?,
            "--iters" => {
                o.iters = num(&mut it, a)?;
                if o.iters == 0 {
                    return Err("--iters must be > 0 cases".into());
                }
            }
            "--corpus" => {
                let v = it.next().ok_or("--corpus needs a directory")?;
                o.corpus = Some(v.clone());
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            other => o.positional.push(other.to_owned()),
        }
    }
    Ok(o)
}

fn print_report(label: &str, report: &doppelganger_loads::RunReport) {
    use std::io::Write as _;
    let _ = write!(
        std::io::stdout(),
        "{}",
        doppelganger_loads::sim::render_report(label, report)
    );
}

fn cmd_suite(o: &Opts) -> Result<(), String> {
    out!("{:18} {:5} description", "name", "suite");
    for w in suite(Scale::Custom(o.insts)) {
        out!("{:18} {:5} {}", w.name, w.suite, w.description);
    }
    Ok(())
}

fn cmd_schemes() -> Result<(), String> {
    out!("{:12} {:20} description", "name", "aliases");
    for e in &REGISTRY {
        out!("{:12} {:20} {}", e.name, e.aliases.join(", "), e.summary);
    }
    Ok(())
}

/// Writes a manifest document to `path` and confirms on stdout.
fn write_manifest(path: &str, doc: &doppelganger_loads::stats::Json) -> Result<(), String> {
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    out!("  manifest: {path}");
    Ok(())
}

fn cmd_run(o: &Opts) -> Result<(), String> {
    let name = o.positional.first().ok_or("run needs a workload name")?;
    let w = by_name(name, Scale::Custom(o.insts))
        .ok_or_else(|| format!("unknown workload `{name}` (try `dgl suite`)"))?;
    let config = doppelganger_loads::sim::ConfigId::new(o.scheme, o.ap);
    let mut b = SimBuilder::new();
    b.scheme(o.scheme)
        .address_prediction(o.ap)
        .value_prediction(o.vp);
    if o.occupancy > 0 {
        b.occupancy_sampling(o.occupancy);
    }
    let label = format!(
        "{name} under {}{}{}",
        o.scheme,
        if o.ap { "+ap" } else { "" },
        if o.vp { "+vp" } else { "" }
    );
    if o.sample {
        let cfg = &o.sampling;
        if cfg.interval_insts == 0 || cfg.window_insts == 0 || cfg.max_windows == 0 {
            return Err("sampling interval, window, and max-windows must be > 0".into());
        }
        // With `--ckpt-dir`, fast-forward snapshots persist on disk:
        // repeat runs (other schemes, other flags) skip the functional
        // walk. The store never changes the result — the manifest is
        // byte-identical with or without it.
        let store = o.ckpt_dir.as_ref().map(|dir| {
            doppelganger_loads::sim::CheckpointStore::with_disk(
                o.store_cap,
                std::path::PathBuf::from(dir),
            )
        });
        let run = b
            .run_sampled_with_store(&w, cfg, store.as_ref())
            .map_err(|e| e.to_string())?;
        out!("{label} (sampled)");
        out!(
            "  windows          {:>12}  (interval {}, warmup {}, window {})",
            run.windows.len(),
            cfg.interval_insts,
            cfg.warmup_insts,
            cfg.window_insts
        );
        out!("  measured insts   {:>12}", run.measured_insts());
        out!("  measured cycles  {:>12}", run.measured_cycles());
        out!("  total insts      {:>12}  (functional)", run.total_insts);
        out!("  estimated cycles {:>12.0}", run.estimated_cycles());
        out!("  sampled IPC      {:>12.4}", run.ipc());
        if !run.halted {
            out!("  warning: the functional run hit its step budget before `halt`");
        }
        if let Some(store) = &store {
            let c = store.counters();
            out!(
                "  checkpoint store {:>12}  ({} hits, {} misses, {} disk hits, {} writes)",
                format!("{} resident", store.resident()),
                c.hits,
                c.misses,
                c.disk_hits,
                c.disk_writes
            );
        }
        if let Some(path) = &o.stats_json {
            let doc = doppelganger_loads::sim::sampled_manifest(&w, config, o.vp, &run);
            write_manifest(path, &doc)?;
        }
        return Ok(());
    }
    let report = b.run_workload(&w).map_err(|e| e.to_string())?;
    print_report(&label, &report);
    if let Some(path) = &o.stats_json {
        let doc = doppelganger_loads::sim::run_manifest(&w, config, o.vp, &report);
        write_manifest(path, &doc)?;
    }
    Ok(())
}

/// `dgl explain <workload>`: run the chosen scheme with doppelganger
/// loads off and on, then show where the doppelgangers came from (the
/// per-PC attribution table) and how the machine filled up over time
/// (occupancy sparklines).
fn cmd_explain(o: &Opts) -> Result<(), String> {
    use doppelganger_loads::sim::render_occupancy;
    if o.spans {
        return cmd_explain_spans(o);
    }
    if o.cpi {
        return cmd_explain_cpi(o);
    }
    let name = o
        .positional
        .first()
        .ok_or("explain needs a workload name")?;
    let w = by_name(name, Scale::Custom(o.insts))
        .ok_or_else(|| format!("unknown workload `{name}` (try `dgl suite`)"))?;
    // Value prediction is mutually exclusive with address prediction,
    // so `explain` — which is about doppelgangers — ignores `--vp`.
    let interval = if o.occupancy > 0 { o.occupancy } else { 256 };
    let prof_reg = o
        .prof
        .then(|| std::sync::Arc::new(doppelganger_loads::pipeline::core_prof_registry()));
    let started = std::time::Instant::now();
    let mut reports = Vec::new();
    for ap in [false, true] {
        let mut b = SimBuilder::new();
        b.scheme(o.scheme)
            .address_prediction(ap)
            .occupancy_sampling(interval);
        if let Some(reg) = &prof_reg {
            b.profiling(std::sync::Arc::clone(reg));
        }
        let report = b.run_workload(&w).map_err(|e| e.to_string())?;
        reports.push(report);
    }
    let wall = started.elapsed();
    let (base, with_ap) = (&reports[0], &reports[1]);
    let scheme = o.scheme.name();
    out!("{name}: {scheme} vs {scheme}+ap");
    out!(
        "  {:12} IPC {:.3}  ({} instructions, {} cycles)",
        scheme,
        base.ipc(),
        base.committed,
        base.cycles
    );
    out!(
        "  {:12} IPC {:.3}  ({} instructions, {} cycles)",
        format!("{scheme}+ap"),
        with_ap.ipc(),
        with_ap.committed,
        with_ap.cycles
    );
    if base.ipc() > 0.0 {
        out!("  doppelganger speedup {:.3}x", with_ap.ipc() / base.ipc());
    }
    out!(
        "  doppelgangers: {} issued, {} propagated; coverage {:.1}%, accuracy {:.1}%",
        with_ap.stats.dgl_issued,
        with_ap.stats.dgl_propagated,
        100.0 * with_ap.stats.dgl_coverage(),
        100.0 * with_ap.stats.dgl_accuracy(),
    );
    out!("");
    out!(
        "top {} load sites under {scheme}+ap:",
        o.top.min(with_ap.load_sites.len())
    );
    out!("{}", with_ap.load_sites.render_top(o.top));
    for (label, report) in [(scheme.to_owned(), base), (format!("{scheme}+ap"), with_ap)] {
        let series = report
            .occupancy
            .as_ref()
            .expect("explain always enables sampling");
        if series.is_empty() {
            out!("{label}: run too short for occupancy samples (interval {interval} cycles)");
        } else {
            out!("{label}:");
            out!("{}", render_occupancy(series));
        }
    }
    if let Some(reg) = &prof_reg {
        out!("");
        out!("host time by stage (both runs):");
        out!("{}", reg.snapshot().render(wall));
        out!("");
        out!("skip-ahead elision (simulated cycles fast-forwarded, results byte-identical):");
        for (label, report) in [(scheme.to_owned(), base), (format!("{scheme}+ap"), with_ap)] {
            let pct = if report.cycles > 0 {
                100.0 * report.elided_cycles as f64 / report.cycles as f64
            } else {
                0.0
            };
            out!(
                "  {:12} {:>12} of {:>12} cycles elided ({pct:.1}%)",
                label,
                report.elided_cycles,
                report.cycles
            );
        }
    }
    Ok(())
}

/// `dgl explain --cpi <workload>`: run the paper's full 8-config
/// matrix and render every configuration's cycle-loss stack side by
/// side (grouped CPI stacked bars), the per-scheme delay provenance
/// (which policy rule parked which loads for how long, and how those
/// episodes ended), and a Figure-6-style overhead decomposition
/// derived from the stacks.
fn cmd_explain_cpi(o: &Opts) -> Result<(), String> {
    use doppelganger_loads::core::DelayCause;
    use doppelganger_loads::sim::ConfigId;
    use doppelganger_loads::stats::StackedBarChart;
    let name = o
        .positional
        .first()
        .ok_or("explain --cpi needs a workload name")?;
    let w = by_name(name, Scale::Custom(o.insts))
        .ok_or_else(|| format!("unknown workload `{name}` (try `dgl suite`)"))?;
    // Coarse display groups. Every component's dotted name falls under
    // exactly one prefix, so the grouped bars inherit the exactness
    // invariant: segment sums equal total cycles.
    const GROUPS: [&str; 6] = ["commit", "frontend", "bad_spec", "mem", "backend", "scheme"];
    let group_of = |component: &str| -> usize {
        GROUPS
            .iter()
            .position(|g| component == *g || component.starts_with(&format!("{g}.")))
            .expect("every CPI component belongs to a display group")
    };
    let mut runs = Vec::new();
    for cfg in ConfigId::ALL {
        let mut b = SimBuilder::new();
        b.scheme(cfg.scheme()).address_prediction(cfg.ap());
        let report = b.run_workload(&w).map_err(|e| e.to_string())?;
        let stack = report
            .cpi
            .clone()
            .ok_or("cycle accounting is off — explain --cpi needs it on")?;
        runs.push((cfg, report.committed, stack));
    }
    out!("{name}: cycle-loss stacks across the 8-config matrix");
    let mut chart = StackedBarChart::new(
        "CPI stack by configuration (cycles per committed instruction):",
        &GROUPS,
    );
    for (cfg, committed, stack) in &runs {
        let mut groups = [0.0f64; GROUPS.len()];
        for (component, cycles) in stack.iter() {
            groups[group_of(component.name())] += cycles as f64;
        }
        let insts = (*committed).max(1) as f64;
        for g in &mut groups {
            *g /= insts;
        }
        chart.bar(&cfg.label(), &groups);
    }
    out!("{}", chart);
    out!("scheme delay provenance (cycles charged to policy rules):");
    let mut any = false;
    for (cfg, _, stack) in &runs {
        for cause in DelayCause::ALL {
            let r = stack.rule(cause);
            if r.cycles == 0 && r.parks == 0 {
                continue;
            }
            any = true;
            out!(
                "  {:11} {:14} {:>9} cycles, {:>6} parks ({} parked cycles): \
                 {} delayed, {} doppelgangered, {} woken, {} squashed",
                cfg.label(),
                cause.label(),
                r.cycles,
                r.parks,
                r.park_cycles,
                r.delayed,
                r.doppelgangered,
                r.woken,
                r.squashed,
            );
        }
    }
    if !any {
        out!("  (no scheme-attributed cycles: baseline-like configs only)");
    }
    out!("");
    // Figure-6-style decomposition: execution-time overhead versus the
    // unrestricted baseline, next to each configuration's own
    // scheme-attributed share. Both columns are derived from the same
    // exact stacks rather than measured separately.
    let base_cycles = runs[0].2.total().max(1) as f64;
    out!("overhead decomposition vs {}:", runs[0].0.label());
    out!(
        "  {:11} {:>12} {:>8} {:>12} {:>13} {:>13}",
        "config",
        "cycles",
        "CPI",
        "overhead",
        "scheme cyc",
        "scheme share"
    );
    for (cfg, committed, stack) in &runs {
        let cycles = stack.total();
        let scheme_cycles: u64 = stack
            .iter()
            .filter(|(c, _)| c.name().starts_with("scheme."))
            .map(|(_, v)| v)
            .sum();
        out!(
            "  {:11} {:>12} {:>8.3} {:>+11.1}% {:>13} {:>12.1}%",
            cfg.label(),
            cycles,
            cycles as f64 / (*committed).max(1) as f64,
            100.0 * (cycles as f64 / base_cycles - 1.0),
            scheme_cycles,
            100.0 * scheme_cycles as f64 / cycles.max(1) as f64,
        );
    }
    Ok(())
}

/// `dgl explain --spans FILE|DIR`: render the span timing table for a
/// telemetry-enabled serve job. Accepts the `<id>.spans.json` sidecar
/// directly, the job's manifest path (the sibling sidecar is derived),
/// or a manifest directory (every sidecar in it is rendered). With
/// `--format chrome --out FILE`, also exports the spans as a Chrome
/// trace for the Perfetto UI.
fn cmd_explain_spans(o: &Opts) -> Result<(), String> {
    use doppelganger_loads::stats::span::{render_spans, spans_from_json};
    use doppelganger_loads::stats::Json;
    let path = o
        .positional
        .first()
        .ok_or("explain --spans needs a spans sidecar (or manifest) path")?;
    let load = |p: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        Json::parse(text.trim_end()).map_err(|e| format!("{p}: {e}"))
    };
    if std::path::Path::new(path).is_dir() {
        let mut sidecars: Vec<std::path::PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{path}: {e}"))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".spans.json"))
            })
            .collect();
        sidecars.sort();
        if sidecars.is_empty() {
            // Not an error: the directory is simply from a run without
            // span telemetry. Say what was scanned and how to get one.
            out!("no span sidecars (*.spans.json) found in {path}");
            out!("  spans are recorded per job by `dgl serve --spans --manifest-dir {path}`,");
            out!("  which writes an <id>.spans.json sidecar next to each manifest");
            return Ok(());
        }
        for sidecar in &sidecars {
            let p = sidecar.display().to_string();
            let spans = spans_from_json(&load(&p)?).map_err(|e| format!("{p}: {e}"))?;
            out!("{p}:");
            out!("{}", render_spans(&spans).trim_end());
        }
        return Ok(());
    }
    let spans = match spans_from_json(&load(path)?) {
        Ok(spans) => spans,
        Err(e) if !path.ends_with(".spans.json") && path.ends_with(".json") => {
            // A manifest path: look for the sibling sidecar a
            // `dgl serve --spans` run writes next to it.
            let sibling = format!("{}.spans.json", path.trim_end_matches(".json"));
            let doc = load(&sibling)
                .map_err(|se| format!("{path}: {e}; sidecar fallback failed: {se}"))?;
            spans_from_json(&doc).map_err(|se| format!("{sibling}: {se}"))?
        }
        Err(e) => return Err(format!("{path}: {e}")),
    };
    out!("{}", render_spans(&spans).trim_end());
    if let Some(out_path) = &o.out {
        if o.format != "chrome" {
            return Err(format!(
                "bad format `{}` for explain --spans --out (only chrome)",
                o.format
            ));
        }
        let host_spans: Vec<doppelganger_loads::trace::chrome::HostSpan> = spans
            .iter()
            .map(|s| doppelganger_loads::trace::chrome::HostSpan {
                name: s.name.clone(),
                track: s.track,
                start_us: s.start_us,
                dur_us: s.dur_us,
                detail: s.detail.clone(),
            })
            .collect();
        let text = doppelganger_loads::trace::chrome::export_with_spans(&[], &host_spans);
        std::fs::write(out_path, text).map_err(|e| format!("{out_path}: {e}"))?;
        out!("  chrome trace: {out_path}");
    }
    Ok(())
}

fn cmd_asm(o: &Opts) -> Result<(), String> {
    let path = o.positional.first().ok_or("asm needs a .dasm file path")?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = assemble(path, &source).map_err(|e| e.to_string())?;
    let mut b = SimBuilder::new();
    b.scheme(o.scheme)
        .address_prediction(o.ap)
        .value_prediction(o.vp);
    let report = b
        .run_program(&program, SparseMemory::new(), o.insts.max(1) * 1_000)
        .map_err(|e| e.to_string())?;
    print_report(path, &report);
    for i in 1..8 {
        let r = doppelganger_loads::Reg::new(i);
        out!("  {r} = {}", report.reg(r));
    }
    Ok(())
}

fn cmd_attack(o: &Opts) -> Result<(), String> {
    if o.secret == 0 {
        return Err("--secret must be nonzero (0 aliases the training line)".into());
    }
    let lab = SpectreV1Lab::new(o.secret);
    out!("planted secret {:#04x}", o.secret);
    for entry in &REGISTRY {
        let scheme = entry.kind;
        for ap in [false, true] {
            let (outcome, _) = lab.run(scheme, ap).map_err(|e| e.to_string())?;
            out!(
                "  {:12}{}  {}",
                scheme.name(),
                if ap { "+ap" } else { "   " },
                match outcome {
                    LeakOutcome::Leaked(v) => format!("LEAKED {v:#04x}"),
                    LeakOutcome::NoLeak => "no leak".into(),
                }
            );
        }
    }
    Ok(())
}

fn cmd_trace(o: &Opts) -> Result<(), String> {
    use doppelganger_loads::trace::{self as tr, TraceSink as _};
    let name = o
        .workload
        .as_deref()
        .or_else(|| o.positional.first().map(String::as_str))
        .ok_or("trace needs a workload (`--workload NAME`; try `dgl suite`)")?;
    let w = by_name(name, Scale::Custom(o.insts))
        .ok_or_else(|| format!("unknown workload `{name}` (try `dgl suite`)"))?;
    let mut sink = tr::SharedSink::recording();
    let mut b = SimBuilder::new();
    b.scheme(o.scheme)
        .address_prediction(o.ap)
        .value_prediction(o.vp)
        .with_trace(sink.clone());
    let report = b.run_workload(&w).map_err(|e| e.to_string())?;
    let events = sink.drain();
    let text = match o.format.as_str() {
        "chrome" => tr::chrome::export(&events),
        "konata" => tr::konata::export(&events),
        _ => tr::jsonl::export(&events),
    };
    match &o.out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            out!(
                "traced {} events over {} cycles ({} instructions) -> {path}",
                events.len(),
                report.cycles,
                report.committed,
            );
        }
        None => {
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(text.as_bytes());
        }
    }
    Ok(())
}

fn cmd_figures(o: &Opts) -> Result<(), String> {
    let fig = figure1(Scale::Custom(o.insts)).map_err(|e| e.to_string())?;
    out!("{}", fig.render());
    Ok(())
}

/// `dgl bench`: run the quick figure matrix once with self-profiling
/// on, print the headline summaries, and append the next
/// `BENCH_<seq>.json` trajectory record.
fn cmd_bench(o: &Opts) -> Result<(), String> {
    use doppelganger_loads::bench::trajectory;
    let scale = if o.quick {
        Scale::Quick
    } else {
        Scale::Custom(o.insts)
    };
    eprintln!("dgl bench: 8 configurations x 20 workloads at {scale:?}...");
    let traj = trajectory::Trajectory::collect(scale).map_err(|e| e.to_string())?;
    for failure in &traj.eval.failures {
        eprintln!("dgl bench: warning: {failure}");
    }
    out!("{}", traj.figure1.render());
    out!(
        "predictor gmeans: coverage {:.1}%, accuracy {:.1}%",
        100.0 * traj.figure7.gmean_coverage(),
        100.0 * traj.figure7.gmean_accuracy()
    );
    out!(
        "host: {:.1} KIPS over {:.2} s wall",
        traj.kips(),
        traj.wall.as_secs_f64()
    );
    out!("");
    out!("host time by stage:");
    out!("{}", traj.prof.render(traj.wall));
    let doc = traj.to_json(&trajectory::git_head_sha(), trajectory::git_tree_dirty());
    let dir = std::path::Path::new(o.out.as_deref().unwrap_or("."));
    let path =
        trajectory::write_record(dir, &doc).map_err(|e| format!("{}: {e}", dir.display()))?;
    out!("trajectory record: {}", path.display());
    if traj.eval.failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} workload(s) failed to measure",
            traj.eval.failures.len()
        ))
    }
}

/// `dgl compare <a.json> <b.json>`: per-metric deltas between two run
/// manifests or trajectory records. Simulated drift beyond
/// `--max-ipc-delta` exits 1; unreadable or mismatched documents exit 2.
///
/// `--kips-floor FRAC` additionally gates *host* throughput: the
/// second document's `host.kips` may regress at most `FRAC` below the
/// first's. Host metrics stay report-only in the main table; the floor
/// is its own verdict line. Setting `DGL_KIPS_FLOOR_WARN_ONLY=1`
/// downgrades a breach to a warning (shared CI runners have noisy,
/// slower hosts than the machine that recorded the baseline).
fn cmd_compare(o: &Opts) -> Result<ExitCode, String> {
    use doppelganger_loads::sim::{compare, kips_floor, CompareOptions};
    use doppelganger_loads::stats::Json;
    let [path_a, path_b] = o.positional.as_slice() else {
        return Err("compare needs exactly two result files".into());
    };
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let a = load(path_a)?;
    let b = load(path_b)?;
    let options = CompareOptions {
        max_rel_delta: o.max_ipc_delta,
    };
    let cmp = match compare(&a, &b, options) {
        Ok(cmp) => cmp,
        Err(e) => {
            // Mismatched schemas/versions are a usage error, not drift.
            eprintln!("dgl: {e}");
            return Ok(ExitCode::from(2));
        }
    };
    if o.json {
        out!("{}", cmp.to_json().to_string_pretty());
    } else {
        out!("{}", cmp.render());
    }
    let mut floor_breached = false;
    if let Some(frac) = o.kips_floor {
        let floor = kips_floor(&a, &b, frac)?;
        out!("{}", floor.render());
        if floor.breached() {
            let warn_only =
                std::env::var("DGL_KIPS_FLOOR_WARN_ONLY").is_ok_and(|v| !v.is_empty() && v != "0");
            if warn_only {
                eprintln!("dgl: warning: KIPS floor breached (DGL_KIPS_FLOOR_WARN_ONLY set)");
            } else {
                floor_breached = true;
            }
        }
    }
    Ok(if cmp.has_drift() || floor_breached {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `dgl serve`: run the batch simulation service over stdin (default)
/// or a TCP socket, sharing one checkpoint store across every worker
/// and connection.
fn cmd_serve(o: &Opts) -> Result<(), String> {
    use doppelganger_loads::sim::serve::{serve_lines_with, serve_tcp_with, ServeOptions};
    use doppelganger_loads::sim::{spawn_metrics_listener, CheckpointStore, ServeTelemetry};
    use doppelganger_loads::stats::{log, Json};
    use std::sync::Arc;
    let store = Arc::new(match &o.ckpt_dir {
        Some(dir) => CheckpointStore::with_disk(o.store_cap, std::path::PathBuf::from(dir)),
        None => CheckpointStore::new(o.store_cap),
    });
    let telemetry = Arc::new(ServeTelemetry::new());
    if let Some(addr) = &o.metrics_listen {
        let bound = spawn_metrics_listener(addr, Arc::clone(&store), Arc::clone(&telemetry))
            .map_err(|e| format!("--metrics-listen {addr}: {e}"))?;
        log::info(
            "serve",
            "metrics listening",
            &[("addr", Json::str(bound.to_string()))],
        );
    }
    let opts = ServeOptions {
        workers: o.workers,
        queue: o.queue,
        manifest_dir: o.manifest_dir.as_ref().map(std::path::PathBuf::from),
        stats: o.stats,
        metrics_interval_ms: o.metrics_interval.map(|s| s.saturating_mul(1_000)),
        flight_recorder: o.flight_recorder,
        postmortem_dir: o.postmortem_dir.as_ref().map(std::path::PathBuf::from),
        spans: o.spans,
    };
    let summary = match &o.listen {
        Some(addr) => serve_tcp_with(addr, &store, &opts, o.max_conns, &telemetry),
        None => serve_lines_with(
            std::io::stdin().lock(),
            std::io::stdout(),
            &store,
            &opts,
            &telemetry,
            None,
        ),
    }
    .map_err(|e| e.to_string())?;
    log::info(
        "serve",
        "exit",
        &[
            ("jobs", Json::uint(summary.jobs)),
            ("errors", Json::uint(summary.errors)),
        ],
    );
    Ok(())
}

fn cmd_fuzz(o: &Opts) -> Result<ExitCode, String> {
    use doppelganger_loads::fuzz::{fuzz, FuzzOptions};
    let opts = FuzzOptions {
        seed: o.seed,
        iters: o.iters,
        workers: o.workers,
        corpus_dir: o.corpus.as_ref().map(std::path::PathBuf::from),
        progress_every: 50,
    };
    let summary = fuzz(&opts);
    out!(
        "dgl fuzz: {} case(s), seed {}, {:.1}s ({:.0} cases/hour)",
        summary.cases,
        o.seed,
        summary.elapsed.as_secs_f64(),
        summary.iters_per_hour()
    );
    out!(
        "  two-secret gadgets: {} ({} distinguished by the unsafe baseline)",
        summary.gadget_cases,
        summary.baseline_distinguished
    );
    if summary.gadget_cases > 0 && summary.baseline_distinguished == 0 {
        out!(
            "  WARNING: baseline never distinguished the secrets — two-secret oracle ran vacuously"
        );
    }
    if summary.bugs.is_empty() {
        out!("  divergences: none");
        return Ok(ExitCode::SUCCESS);
    }
    out!("  divergences: {}", summary.bugs.len());
    for bug in &summary.bugs {
        out!(
            "    case {} (gen seed {:#018x}): {} [{} -> {} insts]{}",
            bug.case,
            bug.gen_seed,
            bug.detail,
            bug.original_len,
            bug.minimized_len,
            bug.saved
                .as_ref()
                .map(|p| format!(" saved {}", p.display()))
                .unwrap_or_default()
        );
    }
    Ok(ExitCode::FAILURE)
}

fn main() -> ExitCode {
    // Exit-code convention: malformed flag values, unknown flags, and
    // unknown commands are usage errors and exit 2; runtime failures
    // (simulation errors, unreadable files) exit 1.
    const USAGE: u8 = 2;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!(
            "usage: dgl <suite|schemes|run|explain|asm|attack|figures|trace|bench|compare|serve\
             |fuzz> [options]"
        );
        return ExitCode::from(USAGE);
    };
    let o = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dgl: {e}");
            return ExitCode::from(USAGE);
        }
    };
    let result = match cmd.as_str() {
        "suite" => cmd_suite(&o).map(|()| ExitCode::SUCCESS),
        "schemes" => cmd_schemes().map(|()| ExitCode::SUCCESS),
        "run" => cmd_run(&o).map(|()| ExitCode::SUCCESS),
        "explain" => cmd_explain(&o).map(|()| ExitCode::SUCCESS),
        "asm" => cmd_asm(&o).map(|()| ExitCode::SUCCESS),
        "attack" => cmd_attack(&o).map(|()| ExitCode::SUCCESS),
        "figures" => cmd_figures(&o).map(|()| ExitCode::SUCCESS),
        "trace" => cmd_trace(&o).map(|()| ExitCode::SUCCESS),
        "bench" => cmd_bench(&o).map(|()| ExitCode::SUCCESS),
        "compare" => cmd_compare(&o),
        "serve" => cmd_serve(&o).map(|()| ExitCode::SUCCESS),
        "fuzz" => cmd_fuzz(&o),
        other => {
            eprintln!("dgl: unknown command `{other}`");
            return ExitCode::from(USAGE);
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("dgl: {e}");
            ExitCode::FAILURE
        }
    }
}
