//! End-to-end tests of the `dgl` command-line interface, driving the
//! real binary via `CARGO_BIN_EXE_dgl`.

use std::process::Command;

fn dgl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dgl"))
        .args(args)
        .output()
        .expect("spawn dgl")
}

#[test]
fn suite_lists_all_workloads() {
    let out = dgl(&["suite"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let workloads =
        doppelganger_loads::workloads::suite(doppelganger_loads::workloads::Scale::Custom(500));
    for w in &workloads {
        assert!(text.contains(w.name), "missing {}", w.name);
    }
}

#[test]
fn run_reports_ipc_and_doppelgangers() {
    let out = dgl(&[
        "run",
        "hmmer_like",
        "--scheme",
        "stt",
        "--ap",
        "--insts",
        "3000",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IPC"));
    assert!(text.contains("doppelgangers"));
}

#[test]
fn run_rejects_unknown_workload() {
    let out = dgl(&["run", "doom_like"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn attack_reports_the_leak_matrix() {
    let out = dgl(&["attack", "--secret", "0x5a", "--insts", "1000"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("LEAKED 0x5a"), "baseline must leak: {text}");
    // Every secure line reports no leak.
    for line in text.lines() {
        if line.contains("nda") || line.contains("stt") || line.contains("dom") {
            assert!(line.contains("no leak"), "line: {line}");
        }
    }
}

#[test]
fn attack_rejects_zero_secret() {
    let out = dgl(&["attack", "--secret", "0"]);
    assert!(!out.status.success());
}

#[test]
fn asm_runs_the_bundled_gcd_program() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/programs/gcd.dasm");
    let out = dgl(&["asm", path]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("r3 = 21"), "gcd(1071, 462) = 21: {text}");
}

#[test]
fn unknown_flag_and_command_fail_cleanly() {
    assert!(!dgl(&["run", "hmmer_like", "--bogus"]).status.success());
    assert!(!dgl(&["frobnicate"]).status.success());
    assert!(!dgl(&[]).status.success());
}

#[test]
fn vp_flag_reports_value_prediction() {
    let out = dgl(&[
        "run",
        "hmmer_like",
        "--scheme",
        "dom",
        "--vp",
        "--insts",
        "3000",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("value prediction"), "{text}");
}

#[test]
fn asm_runs_recursive_fibonacci() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/programs/fib_rec.dasm"
    );
    let out = dgl(&["asm", path, "--scheme", "stt", "--ap"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("r4 = 144"),
        "fib(12) = 144"
    );
}
