//! End-to-end tests of the `dgl` command-line interface, driving the
//! real binary via `CARGO_BIN_EXE_dgl`.

use std::process::Command;

fn dgl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dgl"))
        .args(args)
        .output()
        .expect("spawn dgl")
}

#[test]
fn suite_lists_all_workloads() {
    let out = dgl(&["suite"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let workloads =
        doppelganger_loads::workloads::suite(doppelganger_loads::workloads::Scale::Custom(500));
    for w in &workloads {
        assert!(text.contains(w.name), "missing {}", w.name);
    }
}

#[test]
fn schemes_lists_the_registry() {
    let out = dgl(&["schemes"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for e in &doppelganger_loads::REGISTRY {
        assert!(text.contains(e.name), "missing {}", e.name);
        assert!(text.contains(e.summary), "missing summary for {}", e.name);
    }
}

#[test]
fn run_reports_ipc_and_doppelgangers() {
    let out = dgl(&[
        "run",
        "hmmer_like",
        "--scheme",
        "stt",
        "--ap",
        "--insts",
        "3000",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IPC"));
    assert!(text.contains("doppelgangers"));
}

#[test]
fn run_rejects_unknown_workload() {
    let out = dgl(&["run", "doom_like"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn attack_reports_the_leak_matrix() {
    let out = dgl(&["attack", "--secret", "0x5a", "--insts", "1000"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("LEAKED 0x5a"), "baseline must leak: {text}");
    // The matrix covers every registered scheme, including variants
    // outside the paper's 8-config evaluation.
    assert!(
        text.contains("nda-p-eager"),
        "registry drives attack: {text}"
    );
    // Every secure line reports no leak.
    for line in text.lines() {
        if line.contains("nda") || line.contains("stt") || line.contains("dom") {
            assert!(line.contains("no leak"), "line: {line}");
        }
    }
}

#[test]
fn attack_rejects_zero_secret() {
    let out = dgl(&["attack", "--secret", "0"]);
    assert!(!out.status.success());
}

#[test]
fn asm_runs_the_bundled_gcd_program() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/programs/gcd.dasm");
    let out = dgl(&["asm", path]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("r3 = 21"), "gcd(1071, 462) = 21: {text}");
}

#[test]
fn unknown_flag_and_command_fail_cleanly() {
    assert!(!dgl(&["run", "hmmer_like", "--bogus"]).status.success());
    assert!(!dgl(&["frobnicate"]).status.success());
    assert!(!dgl(&[]).status.success());
}

#[test]
fn vp_flag_reports_value_prediction() {
    let out = dgl(&[
        "run",
        "hmmer_like",
        "--scheme",
        "dom",
        "--vp",
        "--insts",
        "3000",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("value prediction"), "{text}");
}

#[test]
fn secret_flag_parses_decimal_and_hex() {
    // `0x`-prefixed = hex, bare = decimal: 90 and 0x5a are the same
    // byte; a bare 42 means forty-two (0x2a), not 0x42.
    for (arg, rendered) in [("90", "0x5a"), ("0x5a", "0x5a"), ("42", "0x2a")] {
        let out = dgl(&["attack", "--secret", arg, "--insts", "500"]);
        assert!(
            out.status.success(),
            "--secret {arg}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains(&format!("planted secret {rendered}")),
            "--secret {arg} must plant {rendered}: {text}"
        );
    }
    assert!(!dgl(&["attack", "--secret", "pony"]).status.success());
    assert!(!dgl(&["attack", "--secret", "0x1z"]).status.success());
}

/// The PR's acceptance bar for the tracer: on a stride-friendly kernel
/// under NDA with address prediction, the Chrome export is well-formed
/// trace-event JSON containing fetch→commit stage spans and at least
/// one complete doppelganger lifecycle (predicted → issued →
/// propagated) for a single load.
#[test]
fn trace_chrome_export_shows_full_doppelganger_lifecycles() {
    let dir = std::env::temp_dir().join("dgl-cli-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hmmer.trace.json");
    let out = dgl(&[
        "trace",
        "--workload",
        "hmmer_like",
        "--scheme",
        "nda-p",
        "--ap",
        "--insts",
        "2000",
        "--format",
        "chrome",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("traced "));
    let json = std::fs::read_to_string(&path).unwrap();
    doppelganger_loads::trace::validate_json::check(&json).expect("well-formed JSON");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""), "stage spans present");
    for stage in ["fetch", "decode", "issue", "writeback", "commit"] {
        assert!(
            json.contains(&format!("\"name\":\"{stage}\"")),
            "stage track `{stage}` missing"
        );
    }
    // At least one load walks the full predicted → issued → propagated
    // arc (all three events share the `dgl i<seq> <name>` label).
    let full_lifecycle = json.split("dgl i").skip(1).any(|chunk| {
        let Some(seq) = chunk.split(' ').next() else {
            return false;
        };
        chunk.starts_with(&format!("{seq} propagated"))
            && json.contains(&format!("dgl i{seq} predicted"))
            && json.contains(&format!("dgl i{seq} issued"))
    });
    assert!(
        full_lifecycle,
        "no doppelganger shows predicted→issued→propagated"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_rejects_bad_format_and_missing_workload() {
    let out = dgl(&["trace", "--workload", "hmmer_like", "--format", "bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad format"));
    let out = dgl(&["trace", "--format", "chrome"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a workload"));
}

#[test]
fn trace_konata_and_jsonl_write_to_stdout() {
    let out = dgl(&[
        "trace",
        "--workload",
        "hmmer_like",
        "--insts",
        "500",
        "--format",
        "konata",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("Kanata\t0004"), "Konata header: {text}");
    let out = dgl(&[
        "trace",
        "--workload",
        "hmmer_like",
        "--insts",
        "500",
        "--format",
        "jsonl",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for line in text.lines().take(50) {
        doppelganger_loads::trace::validate_json::check(line).expect("each line is JSON");
    }
}

#[test]
fn run_stats_json_writes_a_parseable_versioned_manifest() {
    use doppelganger_loads::stats::Json;
    let dir = std::env::temp_dir().join("dgl-cli-manifest-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.json");
    let out = dgl(&[
        "run",
        "hmmer_like",
        "--scheme",
        "dom",
        "--ap",
        "--insts",
        "3000",
        "--occupancy",
        "64",
        "--stats-json",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("manifest: "));
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = Json::parse(&text).expect("manifest parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(doppelganger_loads::sim::MANIFEST_SCHEMA)
    );
    assert_eq!(
        doc.get("version").and_then(Json::as_u64),
        Some(doppelganger_loads::sim::MANIFEST_VERSION)
    );
    assert!(doc.get("cycles").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(doc.get("mode").and_then(Json::as_str), Some("full"));
    assert!(
        doc.get("occupancy").and_then(|o| o.get("cycle")).is_some(),
        "--occupancy puts the series in the manifest"
    );
    let _ = std::fs::remove_file(&path);

    // The sampled path writes a stitched manifest with windows.
    let path = dir.join("sampled.json");
    let out = dgl(&[
        "run",
        "hmmer_like",
        "--scheme",
        "dom",
        "--ap",
        "--insts",
        "20000",
        "--sample",
        "--sample-interval",
        "3000",
        "--sample-warmup",
        "800",
        "--sample-window",
        "400",
        "--stats-json",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = Json::parse(&text).expect("sampled manifest parses");
    assert_eq!(doc.get("mode").and_then(Json::as_str), Some("sampled"));
    assert!(!doc
        .get("windows")
        .and_then(Json::as_array)
        .unwrap()
        .is_empty());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn explain_prints_attribution_table_and_occupancy() {
    let out = dgl(&[
        "explain",
        "hmmer_like",
        "--scheme",
        "dom",
        "--insts",
        "8000",
        "--top",
        "5",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dom vs dom+ap"), "{text}");
    assert!(text.contains("doppelganger speedup"), "{text}");
    assert!(text.contains("top 5 load sites"), "{text}");
    for header in ["pc", "issued", "useful", "lat p95"] {
        assert!(text.contains(header), "table header `{header}`: {text}");
    }
    assert!(text.contains("occupancy ("), "{text}");
    assert!(text.contains("rob"), "{text}");
    let out = dgl(&["explain"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a workload"));
}

#[test]
fn explain_prof_prints_host_time_by_stage() {
    let out = dgl(&[
        "explain",
        "hmmer_like",
        "--scheme",
        "dom",
        "--insts",
        "3000",
        "--prof",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("host time by stage"), "{text}");
    for stage in ["fetch_decode", "issue", "commit", "mem.hierarchy"] {
        assert!(text.contains(stage), "stage `{stage}` missing: {text}");
    }
    assert!(text.contains("stages sum"), "{text}");
    // Without --prof the table must not appear.
    let out = dgl(&[
        "explain",
        "hmmer_like",
        "--scheme",
        "dom",
        "--insts",
        "3000",
    ]);
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stdout).contains("host time by stage"));
}

/// `dgl explain --cpi` renders the per-config cycle-loss stacks, the
/// per-scheme delay provenance, and the Figure-6-style overhead
/// decomposition derived from them.
#[test]
fn explain_cpi_prints_stacks_and_decomposition() {
    let out = dgl(&["explain", "mcf_like", "--cpi", "--insts", "3000"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CPI stack by configuration"), "{text}");
    for group in ["commit", "frontend", "bad_spec", "mem", "backend", "scheme"] {
        assert!(text.contains(group), "legend group `{group}`: {text}");
    }
    for cfg in ["baseline", "baseline+ap", "nda-p", "stt", "dom", "dom+ap"] {
        assert!(text.contains(cfg), "config `{cfg}` missing: {text}");
    }
    assert!(text.contains("scheme delay provenance"), "{text}");
    assert!(text.contains("dom_delay"), "{text}");
    assert!(text.contains("doppelgangered"), "{text}");
    assert!(
        text.contains("overhead decomposition vs baseline"),
        "{text}"
    );
    assert!(text.contains("scheme share"), "{text}");
    let out = dgl(&["explain", "--cpi"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a workload"));
}

/// `dgl explain --spans DIR` scans for `*.spans.json` sidecars; a
/// directory with none says what was scanned and how to record spans
/// instead of failing.
#[test]
fn explain_spans_scans_a_manifest_directory() {
    let dir = std::env::temp_dir().join("dgl-cli-spans-dir-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let out = dgl(&["explain", "--spans", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "an empty directory is not an error: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("no span sidecars"), "{text}");
    assert!(
        text.contains(dir.to_str().unwrap()),
        "must name the scanned directory: {text}"
    );
    assert!(
        text.contains("dgl serve --spans"),
        "must say how to record spans: {text}"
    );
    // Drop a sidecar in and the same invocation renders it.
    let sidecar = dir.join("job1.spans.json");
    std::fs::write(
        &sidecar,
        r#"{"schema":"dgl-spans","version":1,"spans":[
            {"name":"simulate","track":0,"start_us":0,"dur_us":900,"depth":0,"detail":"w=hmmer"}
        ]}"#,
    )
    .expect("write sidecar");
    let out = dgl(&["explain", "--spans", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("job1.spans.json"), "{text}");
    assert!(text.contains("simulate"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `dgl bench` writes sequential schema-versioned trajectory records,
/// and `dgl compare` finds two records of the same commit identical in
/// every simulated metric (host metrics are report-only).
#[test]
fn bench_writes_trajectory_records_that_compare_clean() {
    use doppelganger_loads::bench::trajectory;
    use doppelganger_loads::stats::Json;
    let dir = std::env::temp_dir().join("dgl-cli-bench-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bench = |expect: &str| {
        let out = dgl(&["bench", "--insts", "800", "--out", dir.to_str().unwrap()]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("host time by stage"), "{text}");
        assert!(
            text.contains(&format!(
                "trajectory record: {}",
                dir.join(expect).display()
            )),
            "{text}"
        );
    };
    bench("BENCH_1.json");
    bench("BENCH_2.json");

    let one = dir.join("BENCH_1.json");
    let two = dir.join("BENCH_2.json");
    let doc = Json::parse(&std::fs::read_to_string(&one).unwrap()).expect("record parses");
    trajectory::validate(&doc).expect("record validates against the v1 schema");
    assert!(doc.get("matrix").is_some());
    assert!(doc.get("host").and_then(|h| h.get("kips")).is_some());

    // Two runs of the same build simulate identically; only host
    // metrics move, so the gate stays green and the exit code is 0.
    let out = dgl(&["compare", one.to_str().unwrap(), two.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "identical runs must compare clean: {text}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        text.contains("OK") || text.contains("IDENTICAL"),
        "verdict: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compare_gates_on_simulated_drift_but_not_host_metrics() {
    use std::os::unix::process::ExitStatusExt as _;
    let dir = std::env::temp_dir().join("dgl-cli-compare-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let write = |name: &str, text: &str| {
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path
    };
    let a = write(
        "a.json",
        r#"{"schema": "dgl-run-manifest", "version": 1, "ipc": 0.5, "host": {"kips": 100.0}}"#,
    );
    let b = write(
        "b.json",
        r#"{"schema": "dgl-run-manifest", "version": 1, "ipc": 0.6, "host": {"kips": 900.0}}"#,
    );
    let host_only = write(
        "c.json",
        r#"{"schema": "dgl-run-manifest", "version": 1, "ipc": 0.5, "host": {"kips": 900.0}}"#,
    );
    let other_schema = write(
        "d.json",
        r#"{"schema": "dgl-bench-trajectory", "version": 1, "ipc": 0.5}"#,
    );

    // Simulated drift: nonzero exit, delta table names the metric.
    let out = dgl(&["compare", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "drift must exit 1");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DRIFT"), "{text}");
    assert!(text.contains("ipc"), "{text}");

    // A loose gate admits the same move.
    let out = dgl(&[
        "compare",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--max-ipc-delta",
        "0.25",
    ]);
    assert!(out.status.success(), "20% move under a 25% gate passes");

    // Host metrics report but never gate.
    let out = dgl(&["compare", a.to_str().unwrap(), host_only.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("report-only"), "{text}");

    // --json emits a parseable document with the same verdict.
    let out = dgl(&[
        "compare",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let doc = doppelganger_loads::stats::Json::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("--json output parses");
    assert_eq!(
        doc.get("drift"),
        Some(&doppelganger_loads::stats::Json::Bool(true))
    );

    // Mismatched schemas are a usage error (exit 2), not drift.
    let out = dgl(&[
        "compare",
        a.to_str().unwrap(),
        other_schema.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "schema mismatch exits 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema"));
    assert_eq!(out.status.signal(), None);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compare_kips_floor_gates_host_throughput() {
    let dir = std::env::temp_dir().join("dgl-cli-kips-floor-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let write = |name: &str, text: &str| {
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path
    };
    let base = write(
        "base.json",
        r#"{"schema": "dgl-run-manifest", "version": 1, "ipc": 0.5, "host": {"kips": 800.0}}"#,
    );
    let slow = write(
        "slow.json",
        r#"{"schema": "dgl-run-manifest", "version": 1, "ipc": 0.5, "host": {"kips": 500.0}}"#,
    );
    let fine = write(
        "fine.json",
        r#"{"schema": "dgl-run-manifest", "version": 1, "ipc": 0.5, "host": {"kips": 700.0}}"#,
    );

    // A -37.5% throughput drop breaches a 20% floor: exit 1 even though
    // simulated metrics are identical.
    let out = dgl(&[
        "compare",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--kips-floor",
        "0.2",
    ]);
    assert_eq!(out.status.code(), Some(1), "floor breach must exit 1");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("BREACH"), "{text}");

    // -12.5% is within the floor.
    let out = dgl(&[
        "compare",
        base.to_str().unwrap(),
        fine.to_str().unwrap(),
        "--kips-floor",
        "0.2",
    ]);
    assert!(out.status.success(), "within-floor regression passes");
    assert!(String::from_utf8_lossy(&out.stdout).contains("kips-floor"));

    // The env escape hatch downgrades a breach to a warning (shared CI
    // runners are slower than the baseline host).
    let out = Command::new(env!("CARGO_BIN_EXE_dgl"))
        .args([
            "compare",
            base.to_str().unwrap(),
            slow.to_str().unwrap(),
            "--kips-floor",
            "0.2",
        ])
        .env("DGL_KIPS_FLOOR_WARN_ONLY", "1")
        .output()
        .expect("spawn dgl");
    assert!(out.status.success(), "warn-only mode must not fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("warning"));

    // Without host.kips on one side the check is a usage-style failure.
    let no_host = write(
        "nohost.json",
        r#"{"schema": "dgl-run-manifest", "version": 1, "ipc": 0.5}"#,
    );
    let out = dgl(&[
        "compare",
        base.to_str().unwrap(),
        no_host.to_str().unwrap(),
        "--kips-floor",
        "0.2",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("host.kips"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fuzz_smoke_is_clean_and_reports_the_seed() {
    let out = dgl(&["fuzz", "--seed", "7", "--iters", "3", "--workers", "2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dgl fuzz: 3 case(s), seed 7"), "{text}");
    assert!(text.contains("divergences: none"), "{text}");
}

#[test]
fn asm_runs_recursive_fibonacci() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/programs/fib_rec.dasm"
    );
    let out = dgl(&["asm", path, "--scheme", "stt", "--ap"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("r4 = 144"),
        "fib(12) = 144"
    );
}

#[test]
fn usage_errors_exit_2_and_name_the_value() {
    // Malformed flag values are usage errors: exit 2, message names
    // both the value and the flag. Runtime failures stay at exit 1.
    let cases: &[&[&str]] = &[
        &["run", "hmmer_like", "--insts", "notanumber"],
        &["run", "hmmer_like", "--sample", "--sample-interval", "x"],
        &["explain", "hmmer_like", "--top", "many"],
        &["compare", "a.json", "b.json", "--max-ipc-delta", "wat"],
        &["serve", "--workers", "several"],
        &["serve", "--metrics-interval", "0"],
        &["serve", "--metrics-listen", "nonsense"],
        &["serve", "--metrics-listen", "127.0.0.1:999999"],
        &["fuzz", "--seed", "notaseed"],
        &["fuzz", "--iters", "lots"],
    ];
    for args in cases {
        let out = dgl(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        let (flag, value) = (args[args.len() - 2], args[args.len() - 1]);
        assert!(
            err.contains(value) && err.contains(flag),
            "{args:?} stderr must name `{value}` and {flag}: {err}"
        );
    }
    let out = dgl(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "unknown command exits 2");
    let out = dgl(&["run", "hmmer_like", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "unknown flag exits 2");
    let out = dgl(&["serve", "--stdin", "--listen", "127.0.0.1:0"]);
    assert_eq!(out.status.code(), Some(2), "conflicting transports exit 2");
    let out = dgl(&["fuzz", "--iters", "0"]);
    assert_eq!(out.status.code(), Some(2), "zero iterations exits 2");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--iters"),
        "zero-iteration error must name --iters"
    );
    let out = dgl(&["fuzz", "--corpus"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "--corpus without a value exits 2"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--corpus"),
        "missing-value error must name --corpus"
    );
    let out = dgl(&["run", "doom_like"]);
    assert_eq!(out.status.code(), Some(1), "runtime errors exit 1");
}

#[test]
fn serve_batch_matches_one_shot_manifests() {
    use std::io::Write as _;
    let dir = std::env::temp_dir().join("dgl-cli-serve-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let manifests = dir.join("manifests");
    let sample = r#""sample":{"interval":2000,"warmup":500,"window":300}"#;
    let batch = format!(
        "{}\n{}\n{}\nnot json at all\n",
        format_args!(
            r#"{{"schema":"dgl-serve-job","version":1,"id":"dom","workload":"hmmer_like","insts":8000,"scheme":"dom","ap":true,{sample}}}"#
        ),
        format_args!(
            r#"{{"schema":"dgl-serve-job","version":1,"id":"stt","workload":"hmmer_like","insts":8000,"scheme":"stt","ap":true,{sample}}}"#
        ),
        format_args!(
            r#"{{"schema":"dgl-serve-job","version":1,"id":"base","workload":"hmmer_like","insts":8000,{sample}}}"#
        ),
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_dgl"))
        .args([
            "serve",
            "--stdin",
            "--workers",
            "2",
            "--manifest-dir",
            manifests.to_str().unwrap(),
            "--stats",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn dgl serve");
    child
        .stdin
        .take()
        .expect("child stdin")
        .write_all(batch.as_bytes())
        .expect("write batch");
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let docs: Vec<doppelganger_loads::stats::Json> = text
        .lines()
        .map(|l| doppelganger_loads::stats::Json::parse(l).expect("result line parses"))
        .collect();
    // 3 job results + 1 parse-error result + 1 stats document.
    assert_eq!(docs.len(), 5, "{text}");
    let oks = docs
        .iter()
        .filter(|d| d.get("ok") == Some(&doppelganger_loads::stats::Json::Bool(true)))
        .count();
    assert_eq!(oks, 3, "{text}");
    let stats = docs
        .iter()
        .find(|d| d.get("schema").and_then(|s| s.as_str()) == Some("dgl-serve-stats"))
        .expect("stats document");
    let host = stats.get("host").expect("stats live under host");
    assert_eq!(host.get("serve.jobs").and_then(|j| j.as_u64()), Some(3));
    assert_eq!(host.get("serve.errors").and_then(|j| j.as_u64()), Some(1));
    assert!(host.get("ckptstore.hits").is_some(), "{text}");
    // The served manifest must be byte-identical to the one-shot CLI's.
    let oneshot = dir.join("oneshot.json");
    let run = dgl(&[
        "run",
        "hmmer_like",
        "--scheme",
        "dom",
        "--ap",
        "--insts",
        "8000",
        "--sample",
        "--sample-interval",
        "2000",
        "--sample-warmup",
        "500",
        "--sample-window",
        "300",
        "--stats-json",
        oneshot.to_str().unwrap(),
    ]);
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let served = std::fs::read(manifests.join("dom.json")).expect("served manifest");
    let solo = std::fs::read(&oneshot).expect("one-shot manifest");
    assert_eq!(served, solo, "served manifest must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}
