//! Predictor-training isolation: the security key of the whole approach
//! is that the address predictor (and branch predictor) are trained
//! **only on committed execution**. If wrong-path (transient) loads
//! could train the stride table, a speculatively-read secret could
//! steer later doppelganger addresses and leak.
//!
//! The test builds a gadget where a transient region performs loads at
//! *secret-dependent* addresses with a consistent stride, then runs the
//! same committed-path program with two different secrets. If transient
//! execution trained anything, the later doppelganger/prefetch traffic
//! would differ; we assert the full observable state is identical.

use doppelganger_loads::isa::{ProgramBuilder, Reg};
use doppelganger_loads::{SchemeKind, SimBuilder, SparseMemory};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

const SECRET: i64 = 0x0040_0000;
const CHAIN: i64 = 0x0050_0000;
const VICTIM: i64 = 0x0060_0000;

/// A gadget whose *transient* region strides through memory at a
/// secret-scaled address, then (on the committed path) runs a strided
/// loop at a fixed PC — the load the attacker would later observe.
fn gadget() -> doppelganger_loads::Program {
    let mut b = ProgramBuilder::new("train_isolation");
    b.imm(r(9), SECRET)
        .load(r(9), r(9), 0) // secret into a register
        .imm(r(2), CHAIN)
        .imm(r(5), 8) // transient-attempt iterations
        .label("spin")
        .load(r(2), r(2), 0) // slow guard operand
        .load(r(7), r(2), 8) // always 1
        .bne(r(7), Reg::ZERO, "after") // taken; cold-mispredicted at first
        // --- transient-only: strided loads at secret-scaled addresses.
        // If these trained the predictor, later predictions would be
        // secret-dependent.
        .shli(r(10), r(9), 12)
        .addi(r(10), r(10), VICTIM as i32)
        .load(Reg::ZERO, r(10), 0)
        .load(Reg::ZERO, r(10), 64)
        .load(Reg::ZERO, r(10), 128)
        .label("after")
        .subi(r(5), r(5), 1)
        .bne(r(5), Reg::ZERO, "spin")
        // --- committed path: an innocent strided loop.
        .imm(r(1), VICTIM)
        .imm(r(3), 64)
        .label("loop")
        .load(r(4), r(1), 0)
        .addi(r(1), r(1), 8)
        .subi(r(3), r(3), 1)
        .bne(r(3), Reg::ZERO, "loop")
        .halt();
    b.build().unwrap()
}

fn memory(secret: u64) -> SparseMemory {
    let mut m = SparseMemory::new();
    m.write_u64(SECRET as u64, secret);
    let mut node = CHAIN as u64;
    let mut state = 7u64;
    for _ in 0..10 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let next = CHAIN as u64 + (state % 2048) * 0x1000;
        m.write_u64(node, next);
        m.write_u64(node + 8, 1);
        node = next;
    }
    for i in 0..64 {
        m.write_u64(VICTIM as u64 + 8 * i, i);
    }
    m
}

#[test]
fn predictor_statistics_are_secret_independent_everywhere() {
    // The secret flows only through the transient region. If transient
    // loads could train the stride table, prediction counts would vary
    // with the secret; they must not, under any scheme.
    for scheme in SchemeKind::ALL {
        let mut results = Vec::new();
        for secret in [3u64, 200u64] {
            let mut builder = SimBuilder::new();
            builder.scheme(scheme).address_prediction(true);
            let report = builder
                .run_program(&gadget(), memory(secret), 2_000_000)
                .unwrap();
            assert!(report.halted, "{scheme} secret={secret}");
            results.push(report);
        }
        let (a, b) = (&results[0], &results[1]);
        assert_eq!(
            a.ap.predictions_issued, b.ap.predictions_issued,
            "{scheme}: prediction count differs by secret"
        );
        assert_eq!(a.ap.coverage(), b.ap.coverage(), "{scheme}: coverage");
        assert_eq!(a.ap.accuracy(), b.ap.accuracy(), "{scheme}: accuracy");
        // Architectural state is secret-independent apart from r9
        // (which holds the secret itself).
        assert_eq!(a.committed, b.committed, "{scheme}");
    }
}

#[test]
fn dom_observable_traffic_is_secret_independent() {
    // The transient loads use *register-derived* (not speculatively
    // loaded) addresses, so NDA-P/STT legitimately let them through —
    // register secrets are outside their threat model (§3.1). DoM is
    // the scheme that protects them, and adding doppelgangers must not
    // change that: the attacker-observable trace (L2+ lookups and all
    // fills) must be identical for any secret.
    for ap in [false, true] {
        let mut observations = Vec::new();
        for secret in [3u64, 200u64] {
            let mut builder = SimBuilder::new();
            builder
                .scheme(SchemeKind::DoM)
                .address_prediction(ap)
                .trace(true);
            let report = builder
                .run_program(&gadget(), memory(secret), 2_000_000)
                .unwrap();
            observations.push((
                report.cycles,
                doppelganger_loads::sim::security::observation(&report),
            ));
        }
        assert_eq!(
            observations[0].1, observations[1].1,
            "DoM ap={ap}: observable memory traffic differs by secret"
        );
        assert_eq!(
            observations[0].0, observations[1].0,
            "DoM ap={ap}: timing differs by secret"
        );
    }
}

#[test]
fn committed_strided_loop_is_predicted_after_training() {
    // Positive control: the committed-path loop *does* train the
    // predictor (so the isolation test above is not vacuous because
    // prediction never happens at all).
    let mut builder = SimBuilder::new();
    builder
        .scheme(SchemeKind::Baseline)
        .address_prediction(true);
    let report = builder
        .run_program(&gadget(), memory(3), 2_000_000)
        .unwrap();
    assert!(
        report.ap.predictions_issued > 10,
        "the committed loop should produce predictions, got {}",
        report.ap.predictions_issued
    );
}

#[test]
fn wrong_path_work_exists() {
    // Sanity: the gadget really does execute transient instructions
    // (otherwise the isolation claim is untested).
    let mut builder = SimBuilder::new();
    builder
        .scheme(SchemeKind::Baseline)
        .address_prediction(true);
    let report = builder
        .run_program(&gadget(), memory(3), 2_000_000)
        .unwrap();
    assert!(
        report.stats.squashed > 0,
        "expected squashed wrong-path instructions"
    );
}
