//! NDA-P-eager acceptance tests.
//!
//! The scheme exists purely as a [`SpeculationPolicy`] implementation —
//! no pipeline stage module was edited to add it. These tests prove the
//! policy layer carries its weight: the variant must match the golden
//! model on every workload, stay Spectre-safe, and actually deliver the
//! eager-branch-resolution benefit it claims.

use doppelganger_loads::isa::{Emulator, ProgramBuilder, Reg};
use doppelganger_loads::sim::security::{LeakOutcome, SpectreV1Lab};
use doppelganger_loads::workloads::{suite, Scale};
use doppelganger_loads::{SchemeKind, SimBuilder, SparseMemory};

const SCALE: Scale = Scale::Custom(3_000);

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// A long-latency "gate" branch (fed by a cold strided load) followed by
/// segments that branch *directly* on warm loaded values — the shape
/// eager branch resolution targets. The suite's kernels compute branch
/// predicates through an intervening ALU mask, so this idiom needs its
/// own microbenchmark. `accumulate` adds an ALU consumer of each loaded
/// value and plants nonzero values for it to sum; that re-serializes
/// the segments on load *propagation* (the adds cannot issue on locked
/// values) and makes the segment branches taken, hiding eager's cycle
/// win behind squash traffic, so the perf test leaves it off (all-zero
/// warm block, quiet branches) while the repair test keeps it for an
/// architecturally visible result.
fn branch_on_load_kernel(accumulate: bool) -> (doppelganger_loads::Program, SparseMemory) {
    let mut b = ProgramBuilder::new("branch_on_load");
    b.imm(r(1), 0x0100_0000) // gate cursor: strided cold loads
        .imm(r(2), 0x0800_0000) // reused block: warm after iter 1
        .imm(r(3), 48) // iterations
        .imm(r(6), 0) // accumulator
        .label("top")
        .load(r(9), r(1), 0) // gate load: cold miss
        .bne(r(9), Reg::ZERO, "g"); // gate branch: slow to resolve
    b.label("g");
    for i in 0..8 {
        let l = format!("s{i}");
        b.load(r(5), r(2), 8 * i) // ready fast, locked under the gate
            .bne(r(5), Reg::ZERO, &l) // branches directly on the load
            .label(&l);
        if accumulate {
            b.add(r(6), r(6), r(5));
        }
    }
    b.addi(r(1), r(1), 4096)
        .subi(r(3), r(3), 1)
        .bne(r(3), Reg::ZERO, "top")
        .halt();
    let mut mem = SparseMemory::new();
    if accumulate {
        for i in 0..8u64 {
            mem.write_u64(0x0800_0000 + 8 * i, i % 3);
        }
    }
    (b.build().unwrap(), mem)
}

/// While the gate branch is unresolved, the segment loads sit
/// ready-but-locked; stock NDA-P keeps the segment branches waiting and
/// pays a serial unlock cascade once the gate resolves, while the eager
/// variant resolves them in the shadow and recovers the lost cycles.
#[test]
fn eager_branches_resolve_on_locked_loads_and_recover_cycles() {
    let (p, mem) = branch_on_load_kernel(false);
    let mut stock = SimBuilder::new();
    stock.scheme(SchemeKind::NdaP);
    let mut eager = SimBuilder::new();
    eager.scheme(SchemeKind::NdaPEager);
    let stock_rep = stock
        .run_program(&p, mem.clone(), 1_000_000)
        .expect("nda-p");
    // Verified run: eager's shortcut must not disturb architectural
    // state even on the kernel built to exercise it.
    let eager_rep = eager
        .run_verified(&p, mem, 1_000_000)
        .expect("nda-p-eager verified");
    assert_eq!(stock_rep.committed, eager_rep.committed);
    assert!(
        (eager_rep.cycles as f64) < stock_rep.cycles as f64 * 0.9,
        "eager {} cycles vs stock {} — the shortcut never fired",
        eager_rep.cycles,
        stock_rep.cycles
    );
}

/// §4.4's in-place repair assumes no consumer observed the old value.
/// An eager branch read breaks that precondition, so a coherence
/// invalidation of an eagerly-consumed line must fall back to a squash
/// (`eager_consumed` → `memory_order_squashes`) — and results must
/// still match the golden model.
#[test]
fn eager_consumption_forces_squash_repair_under_invalidation() {
    let (p, mem) = branch_on_load_kernel(true);
    let mut emu = Emulator::new(&p, mem.clone());
    let golden = emu.run(10_000_000).unwrap();
    let mut sb = SimBuilder::new();
    sb.scheme(SchemeKind::NdaPEager);
    let mut core = sb.build_core();
    for k in 0..120u64 {
        core.inject_invalidation_at(15 + 5 * k, 0x0800_0000);
    }
    let rep = core.run(&p, mem, 2_000_000).expect("run");
    assert!(rep.halted);
    assert_eq!(rep.committed, golden.instructions);
    assert_eq!(rep.reg(r(6)), emu.reg(r(6)));
    assert!(
        rep.stats.memory_order_squashes > 0,
        "no eager-consumed repair ever squashed"
    );
}

/// Cycle-level cross-check against the in-order golden model: final
/// registers, full memory image, and instruction count must all match,
/// with and without doppelganger loads, on the whole workload suite.
#[test]
fn nda_p_eager_matches_golden_model_across_the_suite() {
    for w in suite(SCALE) {
        for ap in [false, true] {
            let mut b = SimBuilder::new();
            b.scheme(SchemeKind::NdaPEager).address_prediction(ap);
            let report = b
                .run_verified(&w.program, w.memory.clone(), w.max_cycles)
                .unwrap_or_else(|e| panic!("{} ap={ap}: {e}", w.name));
            assert!(report.halted, "{} ap={ap} must halt", w.name);
        }
    }
}

/// Eager branch resolution must not reopen the Spectre-v1 explicit
/// channel: load/store addresses still wait for propagation, so the
/// transient access pattern never becomes architecturally visible.
#[test]
fn nda_p_eager_does_not_leak_spectre_v1() {
    let lab = SpectreV1Lab::new(0x5a);
    for ap in [false, true] {
        let (outcome, _) = lab.run(SchemeKind::NdaPEager, ap).expect("lab run");
        assert_eq!(outcome, LeakOutcome::NoLeak, "ap={ap}");
    }
    // Sanity: the same lab does leak on the unprotected baseline.
    let (outcome, _) = lab.run(SchemeKind::Baseline, false).expect("lab run");
    assert_eq!(outcome, LeakOutcome::Leaked(0x5a));
}

/// The point of the variant: resolving branches on ready-but-locked
/// operands recovers IPC that stock NDA-P leaves on the table. Compare
/// geomeans across the suite so one microarchitecturally noisy workload
/// cannot flip the verdict.
#[test]
fn nda_p_eager_is_no_slower_than_stock_nda_p() {
    let mut log_ratio_sum = 0.0f64;
    let mut n = 0u32;
    for w in suite(SCALE) {
        let mut stock = SimBuilder::new();
        stock.scheme(SchemeKind::NdaP);
        let mut eager = SimBuilder::new();
        eager.scheme(SchemeKind::NdaPEager);
        let stock_ipc = stock.run_workload(&w).expect("nda-p").ipc();
        let eager_ipc = eager.run_workload(&w).expect("nda-p-eager").ipc();
        log_ratio_sum += (eager_ipc / stock_ipc).ln();
        n += 1;
    }
    let geomean_ratio = (log_ratio_sum / n as f64).exp();
    assert!(
        geomean_ratio >= 0.999,
        "eager/stock geomean IPC ratio {geomean_ratio:.4} regressed"
    );
}
