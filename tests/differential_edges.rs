//! Targeted differential tests for architectural edge cases, each
//! verified against the golden emulator (`run_verified`) across the
//! full eight-configuration scheme matrix. These pin the corner
//! semantics the fuzzer's random generator only samples: shift counts
//! at and beyond the register width, signed-division overflow and
//! division by zero, loads that straddle cache-line boundaries under
//! non-default line sizes, and call/return chains deeper than the
//! return-address stack.

use doppelganger_loads::isa::{AluOp, Cond, Op, Reg, Src, Width};
use doppelganger_loads::sim::experiments::ConfigId;
use doppelganger_loads::{CoreConfig, Program, SimBuilder, SparseMemory};

const MAX_CYCLES: u64 = 2_000_000;

fn r(n: u8) -> Reg {
    Reg::new(n)
}

/// Runs `ops` against the golden emulator under every configuration,
/// returning the final value of `result_reg` (identical across all
/// eight by construction — `run_verified` checks every register).
fn verify_everywhere(name: &str, ops: Vec<Op>, memory: &SparseMemory) -> i64 {
    let program = Program::new(name, ops).expect("valid program");
    let mut out = None;
    for config in ConfigId::ALL {
        let report = SimBuilder::new()
            .scheme(config.scheme())
            .address_prediction(config.ap())
            .run_verified(&program, memory.clone(), MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{name} diverged on {}: {e}", config.label()));
        out = Some(report.reg(r(10)));
    }
    out.expect("at least one configuration ran")
}

/// Same, but with an explicit core configuration (used to vary the
/// cache-line size).
fn verify_everywhere_with(name: &str, ops: Vec<Op>, memory: &SparseMemory, config: &CoreConfig) {
    let program = Program::new(name, ops).expect("valid program");
    for id in ConfigId::ALL {
        SimBuilder::new()
            .scheme(id.scheme())
            .address_prediction(id.ap())
            .config(*config)
            .run_verified(&program, memory.clone(), MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{name} diverged on {}: {e}", id.label()));
    }
}

fn alu(op: AluOp, dst: u8, a: u8, b: Src) -> Op {
    Op::Alu {
        op,
        dst: r(dst),
        a: r(a),
        b,
    }
}

#[test]
fn shift_counts_at_and_beyond_the_width_mask_to_six_bits() {
    // Shift amounts 63, 64, 65, 127, and -1: the ISA masks the count
    // to six bits (RISC-V style), so 64 behaves as 0 and -1 as 63.
    // The checksum folds every result into r10 so a single-register
    // probe covers all of them.
    let mut ops = vec![
        Op::Imm {
            dst: r(1),
            value: 0x0123_4567_89ab_cdefu64 as i64,
        },
        Op::Imm {
            dst: r(10),
            value: 0,
        },
    ];
    for (i, count) in [63i64, 64, 65, 127, -1].into_iter().enumerate() {
        let c = 20 + i as u8;
        ops.push(Op::Imm {
            dst: r(c),
            value: count,
        });
        for op in [AluOp::Shl, AluOp::Shr, AluOp::Sar] {
            ops.push(alu(op, 11, 1, Src::Reg(r(c))));
            ops.push(alu(AluOp::Xor, 10, 10, Src::Reg(r(11))));
            ops.push(alu(AluOp::Mul, 10, 10, Src::Imm(31)));
        }
    }
    ops.push(Op::Halt);
    let got = verify_everywhere("shift_edges", ops, &SparseMemory::new());

    // Cross-check the folded checksum against the host semantics the
    // ISA documents.
    let v = 0x0123_4567_89ab_cdefu64 as i64;
    let mut want = 0i64;
    for count in [63i64, 64, 65, 127, -1] {
        let m = (count & 0x3f) as u32;
        for x in [
            v.wrapping_shl(m),
            ((v as u64).wrapping_shr(m)) as i64,
            v.wrapping_shr(m),
        ] {
            want = (want ^ x).wrapping_mul(31);
        }
    }
    assert_eq!(got, want);
}

#[test]
fn signed_division_overflow_and_zero_divisors_are_defined() {
    // i64::MIN / -1 wraps to i64::MIN (quotient) and 0 (remainder);
    // x / 0 yields -1 and x % 0 yields x. All four corners must agree
    // between the timing core and the emulator under every scheme.
    let ops = vec![
        Op::Imm {
            dst: r(1),
            value: i64::MIN,
        },
        Op::Imm {
            dst: r(2),
            value: -1,
        },
        Op::Imm {
            dst: r(3),
            value: 0,
        },
        Op::Imm {
            dst: r(4),
            value: 7777,
        },
        alu(AluOp::Div, 20, 1, Src::Reg(r(2))), // MIN / -1 = MIN
        alu(AluOp::Rem, 21, 1, Src::Reg(r(2))), // MIN % -1 = 0
        alu(AluOp::Div, 22, 4, Src::Reg(r(3))), // 7777 / 0 = -1
        alu(AluOp::Rem, 23, 4, Src::Reg(r(3))), // 7777 % 0 = 7777
        alu(AluOp::Div, 24, 1, Src::Imm(0)),    // MIN / 0  = -1
        // Fold: r10 = (((MIN ^ 0) * 3 ^ -1) * 3 ^ 7777) * 3 ^ -1
        alu(AluOp::Xor, 10, 20, Src::Reg(r(21))),
        alu(AluOp::Mul, 10, 10, Src::Imm(3)),
        alu(AluOp::Xor, 10, 10, Src::Reg(r(22))),
        alu(AluOp::Mul, 10, 10, Src::Imm(3)),
        alu(AluOp::Xor, 10, 10, Src::Reg(r(23))),
        alu(AluOp::Mul, 10, 10, Src::Imm(3)),
        alu(AluOp::Xor, 10, 10, Src::Reg(r(24))),
        Op::Halt,
    ];
    let got = verify_everywhere("div_edges", ops, &SparseMemory::new());
    let mut want = i64::MIN; // MIN/-1 folded with MIN%-1 == 0
    for x in [-1i64, 7777, -1] {
        want = want.wrapping_mul(3) ^ x;
    }
    assert_eq!(got, want);
}

#[test]
fn loads_crossing_cache_line_boundaries_verify_under_small_lines() {
    // An 8-byte load at line_bytes - 4 straddles two cache lines; with
    // 16- and 32-byte lines nearly every wide access in this walk does.
    // The memory image is a byte ramp so any mis-split or mis-merge
    // shows up in the loaded value, and `run_verified` compares the
    // full memory image afterwards.
    const BASE: u64 = 0x1000;
    let mut memory = SparseMemory::new();
    for i in 0..512u64 {
        memory.write_u8(BASE + i, (i as u8).wrapping_mul(37).wrapping_add(11));
    }
    let mut ops = vec![
        Op::Imm {
            dst: r(1),
            value: BASE as i64,
        },
        Op::Imm {
            dst: r(10),
            value: 0,
        },
    ];
    // Walk offsets 0..256 step 12: hits every alignment class mod 16
    // with widths 2, 4, and 8.
    for (i, width) in [Width::B2, Width::B4, Width::B8].into_iter().enumerate() {
        for step in 0..20 {
            let offset = (step * 12 + i * 5) as i32;
            ops.push(Op::Load {
                width,
                dst: r(11),
                base: r(1),
                offset,
            });
            ops.push(alu(AluOp::Xor, 10, 10, Src::Reg(r(11))));
            ops.push(alu(AluOp::Mul, 10, 10, Src::Imm(131)));
            // Read-modify-write across the same boundary.
            ops.push(Op::Store {
                width,
                src: r(10),
                base: r(1),
                offset: offset + 256,
            });
        }
    }
    ops.push(Op::Halt);

    for line_bytes in [16usize, 32, 64] {
        let mut config = CoreConfig::tiny();
        config.hierarchy.l1.line_bytes = line_bytes;
        config.hierarchy.l2.line_bytes = line_bytes;
        config.hierarchy.l3.line_bytes = line_bytes;
        verify_everywhere_with(
            &format!("line_cross_{line_bytes}"),
            ops.clone(),
            &memory,
            &config,
        );
    }
}

#[test]
fn call_chains_deeper_than_the_return_address_stack_verify() {
    // 24 nested calls overflow the 16-entry RAS, so the frontend's
    // return predictions go stale on the way back up; every `Ret` must
    // still commit to the architecturally correct target. The link
    // register is spilled to a software stack since `Call` clobbers it.
    const DEPTH: usize = 24;
    const STACK: i64 = 0x8000;
    let main_len = 6;
    // Layout: main (6 ops), then DEPTH bodies of 8 ops each.
    let body = |lvl: usize| main_len + lvl * 8;
    let mut ops = vec![
        Op::Imm {
            dst: r(1),
            value: STACK,
        },
        Op::Imm {
            dst: r(10),
            value: 0,
        },
        Op::Imm {
            dst: r(2),
            value: 1,
        },
        Op::Call { target: body(0) },
        alu(AluOp::Xor, 10, 10, Src::Reg(r(2))),
        Op::Halt,
    ];
    for lvl in 0..DEPTH {
        // push link; accumulate; recurse (or bottom out); pop link; ret
        ops.push(Op::Store {
            width: Width::B8,
            src: Reg::LINK,
            base: r(1),
            offset: (lvl * 8) as i32,
        });
        ops.push(alu(AluOp::Add, 10, 10, Src::Imm(1)));
        ops.push(alu(AluOp::Mul, 2, 2, Src::Imm(3)));
        if lvl + 1 < DEPTH {
            ops.push(Op::Call {
                target: body(lvl + 1),
            });
        } else {
            ops.push(Op::Nop);
        }
        ops.push(alu(AluOp::Add, 10, 10, Src::Imm(1)));
        ops.push(Op::Load {
            width: Width::B8,
            dst: Reg::LINK,
            base: r(1),
            offset: (lvl * 8) as i32,
        });
        ops.push(Op::Nop);
        ops.push(Op::Ret);
    }
    let got = verify_everywhere("deep_calls", ops, &SparseMemory::new());
    let want = (2 * DEPTH as i64) ^ 3i64.wrapping_pow(DEPTH as u32);
    assert_eq!(got, want, "every frame ran exactly once, in order");
}

#[test]
fn mispredicted_branch_over_a_line_crossing_store_stays_architectural() {
    // A store on a squashed path must leave no architectural trace
    // even when it would have straddled a line boundary: the loop
    // trains the branch not-taken, the final trip takes it over the
    // store. `run_verified`'s memory comparison catches any leak.
    const BASE: u64 = 0x2000;
    let mut memory = SparseMemory::new();
    for i in 0..64u64 {
        memory.write_u8(BASE + i, i as u8);
    }
    let ops = vec![
        Op::Imm {
            dst: r(1),
            value: BASE as i64,
        },
        Op::Imm {
            dst: r(2),
            value: 0,
        }, // loop counter
        Op::Imm {
            dst: r(3),
            value: 9,
        }, // trip count
        Op::Imm {
            dst: r(4),
            value: -1,
        }, // poison value
        // loop:
        alu(AluOp::Add, 2, 2, Src::Imm(1)), // 4
        Op::Branch {
            cond: Cond::Geu,
            a: r(2),
            b: r(3),
            target: 8,
        }, // 5: taken only on the last trip
        Op::Store {
            width: Width::B8,
            src: r(4),
            base: r(1),
            offset: 13, // straddles the 16-byte boundary at BASE+16
        }, // 6: runs on trips 1..8, not on the squashed-path final trip
        Op::Jump { target: 4 },             // 7
        // done:
        Op::Load {
            width: Width::B8,
            dst: r(10),
            base: r(1),
            offset: 13,
        }, // 8
        Op::Halt, // 9
    ];
    let mut config = CoreConfig::tiny();
    config.hierarchy.l1.line_bytes = 16;
    config.hierarchy.l2.line_bytes = 16;
    config.hierarchy.l3.line_bytes = 16;
    verify_everywhere_with("squashed_line_cross_store", ops.clone(), &memory, &config);
    // And under the default hierarchy.
    verify_everywhere("squashed_line_cross_store_default", ops, &memory);
}
