//! §4.4 / Figure 3: doppelganger loads and store-to-load forwarding.
//!
//! A doppelganger issues *regardless* of older stores with unresolved
//! addresses (hiding it would leak that the store matched, §4.4), and
//! when the older store's address resolves to the predicted address the
//! store value transparently **overrides** the preload — no squash is
//! needed as long as the preload has not propagated (which NDA-P+AP
//! guarantees, since propagation waits for the visibility point and the
//! unresolved store is itself a shadow).

use doppelganger_loads::isa::{Emulator, ProgramBuilder, Reg};
use doppelganger_loads::{SchemeKind, SimBuilder, SparseMemory};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

const TARGET: i64 = 0x0030_0000; // the contested address
const CHAIN: i64 = 0x0040_0000; // slow source of the store's address

/// Train the predictor on a same-address load, then race an
/// unresolved-address store against the load's doppelganger.
fn gadget() -> (doppelganger_loads::Program, SparseMemory) {
    let mut b = ProgramBuilder::new("stl_race");
    b.imm(r(1), TARGET)
        .imm(r(2), 8)
        .label("train")
        .load(r(3), r(1), 0) // same address every time: stride 0
        .subi(r(2), r(2), 1)
        .bne(r(2), Reg::ZERO, "train")
        // The store's address arrives via a cold load: its address stays
        // unresolved long after the probe load's doppelganger issues.
        .imm(r(4), CHAIN)
        .load(r(5), r(4), 0) // r5 = TARGET (cold miss, slow)
        .imm(r(6), 77)
        .store(r(6), r(5), 0) // store 77 to TARGET, address late
        .load(r(7), r(1), 0) // the probe: doppelganger predicts TARGET
        .halt();
    let mut mem = SparseMemory::new();
    mem.write_u64(TARGET as u64, 5); // pre-store value
    mem.write_u64(CHAIN as u64, TARGET as u64);
    (b.build().unwrap(), mem)
}

#[test]
fn store_value_always_wins_architecturally() {
    let (p, mem) = gadget();
    let mut emu = Emulator::new(&p, mem.clone());
    emu.run(100_000).unwrap();
    assert_eq!(emu.reg(r(7)), 77, "golden model");
    for scheme in SchemeKind::ALL {
        for ap in [false, true] {
            let mut b = SimBuilder::new();
            b.scheme(scheme).address_prediction(ap);
            let rep = b.run_program(&p, mem.clone(), 1_000_000).unwrap();
            assert_eq!(rep.reg(r(7)), 77, "{scheme} ap={ap}");
        }
    }
}

#[test]
fn doppelganger_issues_despite_unresolved_older_store() {
    let (p, mem) = gadget();
    let mut b = SimBuilder::new();
    b.scheme(SchemeKind::NdaP).address_prediction(true);
    let rep = b.run_program(&p, mem.clone(), 1_000_000).unwrap();
    assert!(
        rep.stats.dgl_issued >= 1,
        "the doppelganger must appear in memory (§4.4: hiding it would leak)"
    );
}

#[test]
fn nda_ap_overrides_without_a_squash() {
    // The headline of §4.4 case (2): because the preload has not
    // propagated (NDA-P holds it until the visibility point, and the
    // unresolved store is a shadow), the store forwarding overrides the
    // register preload — no memory-order squash.
    let (p, mem) = gadget();
    let mut b = SimBuilder::new();
    b.scheme(SchemeKind::NdaP).address_prediction(true);
    let rep = b.run_program(&p, mem.clone(), 1_000_000).unwrap();
    assert_eq!(
        rep.stats.memory_order_squashes, 0,
        "override must replace the preload without squashing"
    );
    assert_eq!(rep.reg(r(7)), 77);
}

#[test]
fn unsafe_baseline_pays_the_conventional_squash() {
    // Contrast: without AP the conventional load executes eagerly,
    // propagates stale data, and the resolving store forces the
    // standard memory-order squash — the cost the doppelganger design
    // avoids.
    let (p, mem) = gadget();
    let rep = SimBuilder::new()
        .run_program(&p, mem.clone(), 1_000_000)
        .unwrap();
    assert!(
        rep.stats.memory_order_squashes >= 1,
        "expected a conventional violation squash, got {}",
        rep.stats.memory_order_squashes
    );
    assert_eq!(rep.reg(r(7)), 77, "still architecturally correct");
}
