//! Replays every committed fuzzing reproducer in `corpus/` under both
//! oracles, seed-free: each `.dasm` file is a self-contained program
//! and the memory image is `fuzz_memory(secret)`, a fixed function of
//! the secret byte alone. A divergence the fuzzer once found (or a
//! sentinel pinning oracle behavior) therefore stays fixed forever.

use doppelganger_loads::fuzz::{check_cosim, check_two_secret, load_dir, CorpusEntry};
use std::path::Path;

fn corpus() -> Vec<CorpusEntry> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let entries = load_dir(&dir).expect("corpus loads and assembles");
    assert!(
        !entries.is_empty(),
        "committed corpus must not be empty (sentinels pin oracle behavior)"
    );
    entries
}

#[test]
fn corpus_entries_carry_wellformed_headers() {
    for e in corpus() {
        assert!(
            matches!(e.oracle.as_str(), "cosim" | "two-secret" | "both"),
            "{}: unknown oracle tag `{}`",
            e.path.display(),
            e.oracle
        );
        assert!(!e.program.is_empty(), "{}: empty program", e.path.display());
    }
}

#[test]
fn every_corpus_entry_cosimulates_cleanly() {
    for e in corpus() {
        if let Some(d) = check_cosim(&e.program) {
            panic!("{}: {d}", e.path.display());
        }
    }
}

#[test]
fn every_corpus_entry_is_noninterferent_under_protection() {
    for e in corpus() {
        let out = check_two_secret(&e.program)
            .unwrap_or_else(|err| panic!("{}: {err}", e.path.display()));
        if let Some(v) = out.violations.first() {
            panic!("{}: {v}", e.path.display());
        }
        if e.expect_baseline_leak {
            assert!(
                out.baseline_distinguished,
                "{}: tagged `expect: baseline-leak` but the unsafe baseline \
                 no longer distinguishes the secrets (two-secret oracle went vacuous)",
                e.path.display()
            );
        }
    }
}
