//! Figure 4(b): a *register-resident* secret selects between two loads
//! inside a transient-only region. DoM's threat model protects register
//! secrets; NDA-P and STT explicitly do not (§3.1). With doppelganger
//! loads added, DoM must **stay** protected (§4.6): branches resolve in
//! order and doppelganger addresses are secret-independent, so the
//! observable memory traffic must be identical for any secret —
//! noninterference.

use doppelganger_loads::sim::security::{dom_implicit_targets, DomImplicitLab};
use doppelganger_loads::SchemeKind;

#[test]
fn baseline_distinguishes_register_secrets() {
    // The transient region's inner branch resolves speculatively on the
    // baseline, steering fetch down the secret-dependent arm.
    let lab = DomImplicitLab::new();
    assert!(lab.distinguishes(SchemeKind::Baseline, false).unwrap());
}

#[test]
fn nda_and_stt_do_not_protect_register_secrets() {
    // §3.1: "NDA-P and STT both do not block the transmission of
    // secrets that are already loaded in registers prior to
    // speculation." The reproduction honours the threat-model split:
    // this is expected behaviour, not a defect.
    let lab = DomImplicitLab::new();
    assert!(
        lab.distinguishes(SchemeKind::NdaP, false).unwrap(),
        "register secrets are outside NDA-P's threat model"
    );
    assert!(
        lab.distinguishes(SchemeKind::Stt, false).unwrap(),
        "register secrets are outside STT's threat model"
    );
}

#[test]
fn dom_observations_are_secret_independent() {
    let lab = DomImplicitLab::new();
    assert!(
        !lab.distinguishes(SchemeKind::DoM, false).unwrap(),
        "plain DoM must not reveal a register secret through the hierarchy"
    );
}

#[test]
fn dom_with_doppelgangers_stays_secret_independent() {
    // The paper's §4.6 core claim: adding doppelganger loads to DoM
    // (with in-order branch resolution and visibility-gated reissue)
    // does not open the Figure 4 implicit channels.
    let lab = DomImplicitLab::new();
    assert!(
        !lab.distinguishes(SchemeKind::DoM, true).unwrap(),
        "DoM+AP must not reveal a register secret through the hierarchy"
    );
}

#[test]
fn dom_transient_arm_loads_never_fill_caches() {
    // Direct cache-state check on top of the trace equality: neither
    // X nor Y (the secret-selected targets) may be resident after a
    // DoM(+AP) run.
    let lab = DomImplicitLab::new();
    let (x, y) = dom_implicit_targets();
    for ap in [false, true] {
        for secret in [1u64, 2u64] {
            let report = doppelganger_loads::SimBuilder::new()
                .scheme(SchemeKind::DoM)
                .address_prediction(ap)
                .run_program(&lab_program(&lab), lab.memory(secret), 2_000_000)
                .unwrap();
            for level in [
                doppelganger_loads::mem::Level::L1,
                doppelganger_loads::mem::Level::L2,
                doppelganger_loads::mem::Level::L3,
            ] {
                assert!(
                    !report.mem_system.contains(level, x),
                    "ap={ap} secret={secret}: X resident at {level:?}"
                );
                assert!(
                    !report.mem_system.contains(level, y),
                    "ap={ap} secret={secret}: Y resident at {level:?}"
                );
            }
        }
    }
}

fn lab_program(lab: &DomImplicitLab) -> doppelganger_loads::Program {
    lab.program().clone()
}

#[test]
fn nda_strict_also_protects_register_secrets() {
    // A bonus observation the reproduction surfaces: NDA-S's blanket
    // no-propagation rule means a register secret can never steer a
    // transient transmitter — strictness buys the broader threat model
    // at the §2.1 ILP cost.
    let lab = DomImplicitLab::new();
    for ap in [false, true] {
        assert!(
            !lab.distinguishes(SchemeKind::NdaS, ap).unwrap(),
            "NDA-S ap={ap} must not reveal a register secret"
        );
    }
}
