//! Cross-crate integration: the full workload suite runs under the full
//! configuration matrix, halts, matches the golden model, and exhibits
//! the paper's qualitative relationships.

use doppelganger_loads::isa::Emulator;
use doppelganger_loads::workloads::{suite, Scale};
use doppelganger_loads::{SchemeKind, SimBuilder};

const SCALE: Scale = Scale::Custom(4_000);

#[test]
fn every_workload_matches_golden_model_under_every_config() {
    for w in suite(SCALE) {
        let mut emu = Emulator::new(&w.program, w.memory.clone());
        let golden = emu.run(50_000_000).unwrap();
        assert!(golden.halted, "{}", w.name);
        for scheme in SchemeKind::ALL {
            for ap in [false, true] {
                let mut b = SimBuilder::new();
                b.scheme(scheme).address_prediction(ap);
                let report = b
                    .run_workload(&w)
                    .unwrap_or_else(|e| panic!("{} {scheme} ap={ap}: {e}", w.name));
                assert!(report.halted, "{} {scheme} ap={ap}", w.name);
                assert_eq!(
                    report.committed, golden.instructions,
                    "{} {scheme} ap={ap}",
                    w.name
                );
                assert_eq!(
                    &report.memory,
                    emu.memory(),
                    "{} {scheme} ap={ap}: memory image",
                    w.name
                );
            }
        }
    }
}

#[test]
fn secure_schemes_never_meaningfully_beat_baseline() {
    for w in suite(SCALE) {
        let base = SimBuilder::new().run_workload(&w).unwrap().ipc();
        for scheme in SchemeKind::SECURE {
            let mut b = SimBuilder::new();
            b.scheme(scheme);
            let ipc = b.run_workload(&w).unwrap().ipc();
            assert!(
                ipc <= base * 1.05,
                "{}: {scheme} {ipc:.3} vs baseline {base:.3}",
                w.name
            );
        }
    }
}

#[test]
fn address_prediction_never_catastrophically_regresses() {
    // The paper tolerates small AP losses (xalancbmk under DoM loses
    // ~3%); anything beyond ~15% would be a mechanism bug.
    for w in suite(SCALE) {
        for scheme in SchemeKind::SECURE {
            let mut b = SimBuilder::new();
            b.scheme(scheme);
            let without = b.run_workload(&w).unwrap().ipc();
            b.address_prediction(true);
            let with = b.run_workload(&w).unwrap().ipc();
            assert!(
                with >= without * 0.85,
                "{} {scheme}: ap {with:.3} vs {without:.3}",
                w.name
            );
        }
    }
}

#[test]
fn doppelganger_counters_are_consistent() {
    for w in suite(SCALE) {
        let mut b = SimBuilder::new();
        b.scheme(SchemeKind::Stt).address_prediction(true);
        let report = b.run_workload(&w).unwrap();
        assert!(
            report.stats.dgl_propagated <= report.stats.dgl_issued + report.ap.predictions_issued,
            "{}: propagated {} vs issued {}",
            w.name,
            report.stats.dgl_propagated,
            report.stats.dgl_issued
        );
        let s = report.ap;
        assert!(s.correct_predictions <= s.predicted_loads, "{}", w.name);
        assert!(s.predicted_loads <= s.committed_loads, "{}", w.name);
        assert_eq!(
            s.committed_loads, report.stats.committed_loads,
            "{}: load accounting",
            w.name
        );
    }
}

#[test]
fn coverage_and_accuracy_shapes_match_the_paper() {
    // Figure 7's qualitative shape: streaming kernels near-full
    // coverage/accuracy, chases near zero, stride-run kernels low
    // accuracy.
    let get = |name: &str| {
        let w = doppelganger_loads::workloads::by_name(name, SCALE).unwrap();
        let mut b = SimBuilder::new();
        b.scheme(SchemeKind::DoM).address_prediction(true);
        let r = b.run_workload(&w).unwrap();
        (r.ap.coverage(), r.ap.accuracy())
    };
    let (cov, acc) = get("libquantum_like");
    assert!(cov > 0.8 && acc > 0.95, "libquantum {cov:.2}/{acc:.2}");
    let (cov, _) = get("mcf_like");
    assert!(cov < 0.25, "mcf coverage {cov:.2}");
    let (cov, acc) = get("xalancbmk_like");
    assert!(cov > 0.5 && acc < 0.75, "xalancbmk {cov:.2}/{acc:.2}");
}
