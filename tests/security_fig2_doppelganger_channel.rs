//! Figure 2 (§4.2): the doppelganger itself is a new implicit channel —
//! and a safe one. A *transient* (bound-to-squash) instance of a
//! trained load gets a doppelganger issued at its **predicted** address,
//! which may miss and change cache state. That is allowed precisely
//! because the prediction derives from committed history only:
//!
//! * the observable state change is identical for every secret
//!   (noninterference), even when the transient instance's *real*
//!   address was poisoned with the secret;
//! * the secret-derived address itself never appears in the hierarchy
//!   under any secure scheme.

use doppelganger_loads::sim::security::observation;
use doppelganger_loads::{CoreConfig, Program, Reg, SchemeKind, SimBuilder, SparseMemory};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

const BASE: i64 = 0x0010_0000; // trained stride region
const SECRET: i64 = 0x0030_0000;
const CHAIN: i64 = 0x0040_0000;
const TRAIN_ITERS: i64 = 12;

/// Phase 1 trains a strided load (inside a function, so the *same
/// static load* can be reached transiently later); phase 2 enters a
/// never-taken region via a cold misprediction and calls the function
/// with a secret-poisoned cursor.
fn gadget() -> Program {
    let mut b = doppelganger_loads::ProgramBuilder::new("fig2");
    b.imm(r(9), SECRET)
        .imm(r(1), BASE)
        .imm(r(3), TRAIN_ITERS)
        .imm(r(2), CHAIN)
        // Phase 1: train.
        .label("train")
        .call("work")
        .subi(r(3), r(3), 1)
        .bne(r(3), Reg::ZERO, "train")
        // Phase 2: a slow, always-taken guard; its first execution is
        // cold-mispredicted into the region below.
        .load(r(2), r(2), 0)
        .load(r(7), r(2), 8) // always 1, arrives ~150 cycles later
        .bne(r(7), Reg::ZERO, "after")
        // --- transient-only region ---
        // The secret is **speculatively loaded** here (the threat all
        // three schemes share, §3.1 — a register-resident secret would
        // be out of scope for NDA-P/STT).
        .load(r(8), r(9), 0)
        .shli(r(8), r(8), 6)
        .add(r(1), r(1), r(8)) // poison the cursor with the secret
        .call("work") // transient instance of the trained load
        .label("after")
        .halt()
        // The trained function: load through r1, advance by the stride.
        .label("work")
        .load(r(4), r(1), 0)
        .addi(r(1), r(1), 8)
        .ret();
    b.build().unwrap()
}

fn memory(secret: u64) -> SparseMemory {
    let mut m = SparseMemory::new();
    m.write_u64(SECRET as u64, secret);
    for i in 0..64u64 {
        m.write_u64(BASE as u64 + 8 * i, i + 1);
    }
    let mut node = CHAIN as u64;
    let mut state = 0xfeedu64;
    for _ in 0..4 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let next = CHAIN as u64 + (state % 2048) * 0x1000;
        m.write_u64(node, next);
        m.write_u64(node + 8, 1);
        node = next;
    }
    m
}

/// AP on, prefetching off — so any fill beyond the committed stream is
/// attributable to the doppelganger alone.
fn run(scheme: SchemeKind, secret: u64) -> doppelganger_loads::RunReport {
    let mut cfg = CoreConfig::default();
    cfg.doppelganger.prefetch = false;
    let mut b = SimBuilder::new();
    b.scheme(scheme)
        .address_prediction(true)
        .config(cfg)
        .trace(true);
    b.run_program(&gadget(), memory(secret), 2_000_000).unwrap()
}

#[test]
fn transient_doppelganger_fills_only_the_predicted_line() {
    // The committed stream touches BASE..BASE+12*8. The transient
    // instance's doppelganger extends it by exactly one stride.
    let predicted = (BASE + TRAIN_ITERS * 8) as u64;
    for scheme in SchemeKind::SECURE {
        let rep = run(scheme, 3);
        assert!(
            rep.mem_system
                .contains(doppelganger_loads::mem::Level::L3, predicted),
            "{scheme}: the doppelganger's (safe) fill should be visible"
        );
        assert!(rep.stats.dgl_issued >= 1, "{scheme}");
    }
}

#[test]
fn secret_poisoned_address_never_reaches_the_hierarchy() {
    for scheme in SchemeKind::SECURE {
        for secret in [3u64, 500u64] {
            let rep = run(scheme, secret);
            let poisoned = (BASE as u64)
                .wrapping_add(TRAIN_ITERS as u64 * 8)
                .wrapping_add(secret << 6);
            for level in [
                doppelganger_loads::mem::Level::L1,
                doppelganger_loads::mem::Level::L2,
                doppelganger_loads::mem::Level::L3,
            ] {
                assert!(
                    !rep.mem_system.contains(level, poisoned),
                    "{scheme} secret={secret}: poisoned line at {level:?}"
                );
            }
        }
    }
}

#[test]
fn observable_traffic_is_secret_independent() {
    // The Figure 2 argument in full: with the doppelganger channel
    // open, the observation trace still cannot distinguish secrets.
    for scheme in SchemeKind::SECURE {
        let a = run(scheme, 3);
        let b = run(scheme, 500);
        let secret_line = |t: &doppelganger_loads::mem::TraceEvent| match *t {
            doppelganger_loads::mem::TraceEvent::Lookup { line, .. }
            | doppelganger_loads::mem::TraceEvent::Fill { line, .. }
            | doppelganger_loads::mem::TraceEvent::Blocked { line } => {
                line != (SECRET as u64 & !63)
            }
        };
        let ta: Vec<_> = observation(&a).into_iter().filter(secret_line).collect();
        let tb: Vec<_> = observation(&b).into_iter().filter(secret_line).collect();
        assert_eq!(ta, tb, "{scheme}: trace distinguishes secrets");
        assert_eq!(a.cycles, b.cycles, "{scheme}: timing distinguishes secrets");
    }
}

#[test]
fn unsafe_baseline_does_leak_through_the_poisoned_address() {
    // Contrast: with no protection the transient load itself issues at
    // the secret-derived address.
    let secret = 5u64;
    let rep = run(SchemeKind::Baseline, secret);
    let poisoned = (BASE as u64)
        .wrapping_add(TRAIN_ITERS as u64 * 8)
        .wrapping_add(secret << 6);
    assert!(
        rep.mem_system
            .contains(doppelganger_loads::mem::Level::L3, poisoned),
        "baseline should have filled the secret-derived line"
    );
}
