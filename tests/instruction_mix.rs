//! The pipeline's committed-instruction accounting must match the
//! golden model's instruction mix exactly: committed loads, stores,
//! and branch counts are architectural facts, independent of scheme,
//! prediction, or timing.

use doppelganger_loads::isa::Emulator;
use doppelganger_loads::workloads::{suite, Scale};
use doppelganger_loads::{SchemeKind, SimBuilder};

#[test]
fn committed_mix_matches_the_golden_model() {
    for w in suite(Scale::Custom(3_000)) {
        let mut emu = Emulator::new(&w.program, w.memory.clone());
        emu.run(50_000_000).unwrap();
        let (loads, stores, branches, _) = emu.mix();
        for (scheme, ap) in [
            (SchemeKind::Baseline, false),
            (SchemeKind::NdaP, true),
            (SchemeKind::Stt, true),
            (SchemeKind::DoM, true),
        ] {
            let mut b = SimBuilder::new();
            b.scheme(scheme).address_prediction(ap);
            let rep = b.run_workload(&w).unwrap();
            assert_eq!(
                rep.stats.committed_loads, loads,
                "{} {scheme} ap={ap}: loads",
                w.name
            );
            assert_eq!(
                rep.stats.committed_stores, stores,
                "{} {scheme} ap={ap}: stores",
                w.name
            );
            // The emulator counts conditional branches; the pipeline
            // additionally counts indirect control (jr/ret), so the
            // pipeline count must be >= and the conditional part equal.
            assert!(
                rep.stats.committed_branches >= branches,
                "{} {scheme} ap={ap}: branches {} < {}",
                w.name,
                rep.stats.committed_branches,
                branches
            );
            // Latency histogram covers at least every committed load
            // (squashed wrong-path loads that had already propagated
            // also contribute samples).
            assert!(
                rep.load_latency.count() >= loads,
                "{} {scheme} ap={ap}: {} latency samples < {} committed loads",
                w.name,
                rep.load_latency.count(),
                loads
            );
        }
    }
}
