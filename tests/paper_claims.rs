//! End-to-end assertions of the paper's headline claims, run on a
//! reduced instruction budget (the full-budget record lives in
//! EXPERIMENTS.md). These are the statements a reviewer would check
//! first; if a refactor breaks the shape, this suite catches it.

use doppelganger_loads::sim::experiments::{figure1_from, ConfigId, Evaluation};
use doppelganger_loads::workloads::Scale;

const SCALE: Scale = Scale::Custom(6_000);

fn matrix() -> Evaluation {
    Evaluation::run(SCALE, &ConfigId::ALL).expect("evaluation matrix")
}

#[test]
fn headline_figure1_shape() {
    let eval = matrix();
    let fig = figure1_from(&eval);

    for s in &fig.schemes {
        // Every scheme pays a real slowdown...
        assert!(
            s.without_ap < 0.99,
            "{}: no measurable slowdown ({:.3})",
            s.base_cfg.label(),
            s.without_ap
        );
        // ...and address prediction recovers a nontrivial part of it
        // (paper: 42%, 48%, 30%).
        let cut = s.slowdown_reduction();
        assert!(
            cut > 0.15,
            "{}: slowdown cut only {:.0}%",
            s.base_cfg.label(),
            100.0 * cut
        );
    }

    // Scheme ordering without AP: STT least slowdown, DoM worst.
    let by = |c: ConfigId| eval.gmean_normalized(c);
    assert!(
        by(ConfigId::Stt) >= by(ConfigId::Nda),
        "STT should lead NDA-P"
    );
    assert!(
        by(ConfigId::Nda) > by(ConfigId::Dom),
        "NDA-P should lead DoM"
    );

    // The paper's pointed observation: NDA-P *with* AP outpaces the
    // more complex STT *without* AP.
    assert!(
        by(ConfigId::NdaAp) > by(ConfigId::Stt),
        "NDA-P+AP {:.3} should outpace plain STT {:.3}",
        by(ConfigId::NdaAp),
        by(ConfigId::Stt)
    );

    // §7: the unsafe baseline gains almost nothing from AP alone.
    assert!(
        (0.97..=1.05).contains(&fig.baseline_ap),
        "baseline+AP should be ~1.0, got {:.3}",
        fig.baseline_ap
    );
}

#[test]
fn every_ap_config_beats_or_matches_its_scheme_geomean() {
    let eval = matrix();
    for (base, ap) in [
        (ConfigId::Nda, ConfigId::NdaAp),
        (ConfigId::Stt, ConfigId::SttAp),
        (ConfigId::Dom, ConfigId::DomAp),
    ] {
        let without = eval.gmean_normalized(base);
        let with = eval.gmean_normalized(ap);
        assert!(
            with >= without,
            "{}: {:.3} -> {:.3}",
            base.label(),
            without,
            with
        );
    }
}

#[test]
fn figure7_outlier_orderings() {
    let eval = matrix();
    let cell = |name: &str| {
        let row = eval
            .rows
            .iter()
            .find(|r| r.workload == name)
            .unwrap_or_else(|| panic!("workload {name}"));
        row.cells[&ConfigId::DomAp]
    };
    // xalancbmk has the worst accuracy of the suite (paper: < 60%).
    let xal = cell("xalancbmk_like");
    for regular in ["libquantum_like", "hmmer_like", "gcc_like"] {
        assert!(
            cell(regular).accuracy > xal.accuracy,
            "{regular} accuracy should beat xalancbmk's"
        );
    }
    // mcf's coverage is far below the streaming kernels' (paper: 9%).
    assert!(cell("mcf_like").coverage < 0.35);
    assert!(cell("libquantum_like").coverage > 0.8);
}

#[test]
fn dom_suffers_uniquely_on_l2_resident_stencils() {
    // GemsFDTD: the paper's example of DoM-specific pain that AP fixes.
    let eval = matrix();
    let row = eval
        .rows
        .iter()
        .find(|r| r.workload == "GemsFDTD_like")
        .expect("workload");
    let nda = row.normalized_ipc(ConfigId::Nda);
    let dom = row.normalized_ipc(ConfigId::Dom);
    let dom_ap = row.normalized_ipc(ConfigId::DomAp);
    assert!(dom < nda * 0.9, "DoM {dom:.3} should trail NDA-P {nda:.3}");
    assert!(dom_ap > dom * 1.2, "AP should recover DoM's stencil loss");
}

#[test]
fn nda_strict_is_worse_than_permissive() {
    // Extension check (§2.1): strict data propagation blocks ILP as
    // well as MLP, which is why the paper optimizes NDA-P.
    use doppelganger_loads::workloads::by_name;
    use doppelganger_loads::{SchemeKind, SimBuilder};
    for name in ["hmmer_like", "libquantum_like", "exchange2_s_like"] {
        let w = by_name(name, SCALE).unwrap();
        let base = SimBuilder::new().run_workload(&w).unwrap().ipc();
        let mut b = SimBuilder::new();
        b.scheme(SchemeKind::NdaP);
        let ndap = b.run_workload(&w).unwrap().ipc();
        let mut b = SimBuilder::new();
        b.scheme(SchemeKind::NdaS);
        let ndas = b.run_workload(&w).unwrap().ipc();
        assert!(
            ndas <= ndap * 1.02,
            "{name}: NDA-S {:.3} should not beat NDA-P {:.3}",
            ndas / base,
            ndap / base
        );
    }
}
