//! The leak matrix: the Spectre-v1 gadget must leak on the unsafe
//! baseline (with and without address prediction) and must not leak
//! under any secure scheme, with or without doppelganger loads —
//! the paper's threat-model-transparency claim in its most direct form.

use doppelganger_loads::sim::security::{LeakOutcome, SpectreV1Lab};
use doppelganger_loads::SchemeKind;

#[test]
fn baseline_leaks_exact_secret() {
    let lab = SpectreV1Lab::new(0x42);
    let (outcome, report) = lab.run(SchemeKind::Baseline, false).unwrap();
    assert!(report.halted);
    assert_eq!(outcome, LeakOutcome::Leaked(0x42));
}

#[test]
fn baseline_with_ap_still_leaks() {
    // Address prediction must not accidentally *fix* the baseline —
    // the leak comes from unrestricted propagation, not addressing.
    let lab = SpectreV1Lab::new(0x42);
    let (outcome, _) = lab.run(SchemeKind::Baseline, true).unwrap();
    assert_eq!(outcome, LeakOutcome::Leaked(0x42));
}

#[test]
fn all_secure_schemes_block_the_leak() {
    let lab = SpectreV1Lab::new(0x42);
    for scheme in SchemeKind::SECURE {
        for ap in [false, true] {
            let (outcome, report) = lab.run(scheme, ap).unwrap();
            assert!(report.halted, "{scheme} ap={ap} must finish");
            assert_eq!(
                outcome,
                LeakOutcome::NoLeak,
                "{scheme} ap={ap} leaked through the probe array"
            );
        }
    }
}

#[test]
fn leak_tracks_the_planted_secret() {
    // The baseline leak is not an artifact of one lucky bit pattern:
    // whatever byte is planted is what the probe recovers.
    for secret in [0x01, 0x5A, 0x80, 0xFF] {
        let lab = SpectreV1Lab::new(secret);
        let (outcome, _) = lab.run(SchemeKind::Baseline, false).unwrap();
        assert_eq!(outcome, LeakOutcome::Leaked(secret), "secret {secret:#x}");
    }
}

#[test]
fn doppelgangers_do_not_reopen_the_channel_for_any_secret() {
    // §4.2: the doppelganger's predicted address cannot depend on
    // speculative values. Sweep secrets under every scheme+AP config.
    for secret in [0x11, 0xEE] {
        let lab = SpectreV1Lab::new(secret);
        for scheme in SchemeKind::SECURE {
            let (outcome, _) = lab.run(scheme, true).unwrap();
            assert_eq!(
                outcome,
                LeakOutcome::NoLeak,
                "{scheme}+ap leaked secret {secret:#x}"
            );
        }
    }
}

#[test]
fn architectural_results_are_scheme_independent() {
    // The gadget commits the same architectural execution everywhere;
    // only microarchitectural state differs.
    let lab = SpectreV1Lab::new(0x42);
    let (_, baseline) = lab.run(SchemeKind::Baseline, false).unwrap();
    for scheme in SchemeKind::SECURE {
        for ap in [false, true] {
            let (_, report) = lab.run(scheme, ap).unwrap();
            assert_eq!(report.committed, baseline.committed, "{scheme} ap={ap}");
            assert_eq!(report.regs, baseline.regs, "{scheme} ap={ap}");
        }
    }
}
