//! §4.5: doppelganger loads and memory consistency. External
//! invalidations snoop the load queue; a doppelganger whose predicted
//! address matches is **not** squashed — the note takes effect when the
//! preload would propagate, and is ignored entirely on mispredictions.
//! Architectural results must always match the golden model, with or
//! without invalidation storms.

use doppelganger_loads::isa::{Emulator, ProgramBuilder, Reg};
use doppelganger_loads::{CoreConfig, SchemeKind, SimBuilder, SparseMemory};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// A strided dependent-load loop whose lines we invalidate mid-run.
fn looped_loads() -> (doppelganger_loads::Program, SparseMemory) {
    let mut b = ProgramBuilder::new("inval_target");
    b.imm(r(1), 0x10000)
        .imm(r(2), 200)
        .imm(r(3), 0)
        .label("top")
        .load(r(4), r(1), 0)
        .add(r(3), r(3), r(4))
        .addi(r(1), r(1), 8)
        .subi(r(2), r(2), 1)
        .bne(r(2), Reg::ZERO, "top")
        .halt();
    let mut mem = SparseMemory::new();
    for i in 0..200u64 {
        mem.write_u64(0x10000 + 8 * i, i + 1);
    }
    (b.build().unwrap(), mem)
}

#[test]
fn invalidations_never_change_architectural_results() {
    let (p, mem) = looped_loads();
    let mut emu = Emulator::new(&p, mem.clone());
    let golden = emu.run(1_000_000).unwrap();
    for scheme in SchemeKind::ALL {
        for ap in [false, true] {
            let mut builder = SimBuilder::new();
            builder.scheme(scheme).address_prediction(ap);
            let mut core = builder.build_core();
            // An invalidation storm across the loop's working set while
            // loads are in flight.
            for k in 0..40u64 {
                core.inject_invalidation_at(20 + 7 * k, 0x10000 + 64 * (k % 25));
            }
            let report = core.run(&p, mem.clone(), 2_000_000).unwrap();
            assert!(report.halted, "{scheme} ap={ap}");
            assert_eq!(report.committed, golden.instructions, "{scheme} ap={ap}");
            assert_eq!(report.reg(r(3)), emu.reg(r(3)), "{scheme} ap={ap}");
        }
    }
}

#[test]
fn invalidation_slows_but_does_not_wedge() {
    // The invalidated lines must be refetched; cycles may grow but the
    // run completes well inside the budget.
    let (p, mem) = looped_loads();
    let mut builder = SimBuilder::new();
    builder
        .scheme(SchemeKind::DoM)
        .address_prediction(true)
        .config(CoreConfig::default());
    let baseline = builder.run_program(&p, mem.clone(), 2_000_000).unwrap();

    let mut core = builder.build_core();
    for k in 0..100u64 {
        core.inject_invalidation_at(10 + 3 * k, 0x10000 + 64 * (k % 25));
    }
    let stormy = core.run(&p, mem.clone(), 4_000_000).unwrap();
    assert!(stormy.halted);
    assert!(
        stormy.cycles >= baseline.cycles,
        "storm {} vs calm {}",
        stormy.cycles,
        baseline.cycles
    );
}

#[test]
fn invalidating_unused_lines_is_inert() {
    let (p, mem) = looped_loads();
    let mut builder = SimBuilder::new();
    builder.scheme(SchemeKind::Stt).address_prediction(true);
    let calm = builder.run_program(&p, mem.clone(), 2_000_000).unwrap();
    let mut core = builder.build_core();
    for k in 0..50u64 {
        core.inject_invalidation_at(10 + 5 * k, 0xDEAD_0000 + 64 * k);
    }
    let stormy = core.run(&p, mem.clone(), 2_000_000).unwrap();
    assert_eq!(
        stormy.cycles, calm.cycles,
        "unrelated lines must not perturb"
    );
    assert_eq!(stormy.regs, calm.regs);
}
